package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/vecdb"
)

// openTestStore opens a durable store in dir with the background
// checkpointer disabled, so tests control exactly when checkpoints
// happen.
func openTestStore(t *testing.T, dir string, shards int) *ShardedDB {
	t.Helper()
	s, err := OpenShardedDefault(dir, shards, 64, 128, PersistConfig{CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

var persistDocs = []string{
	"The store operates from nine in the morning until five.",
	"Employees are entitled to fourteen days of annual leave.",
	"At least three shopkeepers are required to run a shop.",
	"Uniforms must be worn at all times on the shop floor.",
	"The probation period lasts three months for new employees.",
	"Overtime is paid at one and a half times the hourly rate.",
}

// searchAll returns deterministic search results for a fixed probe
// query set — the equivalence oracle for recovery tests.
func searchAll(t *testing.T, s *ShardedDB) [][]vecdb.Hit {
	t.Helper()
	queries := []string{
		"when does the store open",
		"how many days of annual leave",
		"what is the probation period",
	}
	out := make([][]vecdb.Hit, len(queries))
	for i, q := range queries {
		hits, err := s.Search(q, 4)
		if err != nil {
			t.Fatalf("search %q: %v", q, err)
		}
		out[i] = hits
	}
	return out
}

// TestRecoverFromWALOnly: a crash with no checkpoint at all replays
// every mutation from the WAL and serves identical results.
func TestRecoverFromWALOnly(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, 4)
	var ids []int64
	for _, d := range persistDocs {
		id, err := s.Add(d, map[string]string{"src": "handbook"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := s.Delete(ids[3]); err != nil {
		t.Fatal(err)
	}
	want := searchAll(t, s)
	wantLen := s.Len()
	s.crash() // no checkpoint: everything must come back from the WAL

	r := openTestStore(t, dir, 4)
	defer r.Close()
	if r.Len() != wantLen {
		t.Fatalf("recovered %d docs, want %d", r.Len(), wantLen)
	}
	if st := r.PersistStats(); st.ReplayedRecords != uint64(len(persistDocs))+1 {
		t.Errorf("replayed %d records, want %d", st.ReplayedRecords, len(persistDocs)+1)
	}
	if got := searchAll(t, r); !reflect.DeepEqual(got, want) {
		t.Errorf("search diverged after recovery:\n got %+v\nwant %+v", got, want)
	}
	// The ID allocator must resume past every recovered document.
	id, err := r.Add("a brand new document about store hours", nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, old := range ids {
		if id == old {
			t.Fatalf("recovered allocator reissued ID %d", id)
		}
	}
	// Deleted document stays deleted.
	if _, err := r.Get(ids[3]); !errors.Is(err, ErrNotFound) {
		t.Errorf("deleted doc resurfaced: err = %v", err)
	}
}

// TestRecoverCheckpointPlusWAL: recovery replays only the records
// journaled after the latest checkpoint, and the combined state equals
// the pre-crash state exactly.
func TestRecoverCheckpointPlusWAL(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, 4)
	for _, d := range persistDocs[:4] {
		if _, err := s.Add(d, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Save(); err != nil {
		t.Fatal(err)
	}
	if st := s.PersistStats(); st.WALRecords != 0 || st.Checkpoints == 0 {
		t.Fatalf("after checkpoint: %+v", st)
	}
	// Post-checkpoint traffic: two adds and one delete, WAL-only.
	var tail []int64
	for _, d := range persistDocs[4:] {
		id, err := s.Add(d, nil)
		if err != nil {
			t.Fatal(err)
		}
		tail = append(tail, id)
	}
	if err := s.Delete(tail[0]); err != nil {
		t.Fatal(err)
	}
	want := searchAll(t, s)
	wantLen := s.Len()
	s.crash()

	r := openTestStore(t, dir, 4)
	defer r.Close()
	if r.Len() != wantLen {
		t.Fatalf("recovered %d docs, want %d", r.Len(), wantLen)
	}
	if st := r.PersistStats(); st.ReplayedRecords != 3 {
		t.Errorf("replayed %d records on top of checkpoint, want 3", st.ReplayedRecords)
	}
	if got := searchAll(t, r); !reflect.DeepEqual(got, want) {
		t.Errorf("search diverged after checkpoint+WAL recovery:\n got %+v\nwant %+v", got, want)
	}
}

// TestGracefulCloseLeavesNothingToReplay: Close checkpoints, so a
// clean restart replays zero records.
func TestGracefulCloseLeavesNothingToReplay(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, 2)
	for _, d := range persistDocs {
		if _, err := s.Add(d, nil); err != nil {
			t.Fatal(err)
		}
	}
	want := searchAll(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := openTestStore(t, dir, 2)
	defer r.Close()
	if st := r.PersistStats(); st.ReplayedRecords != 0 || st.WALRecords != 0 {
		t.Errorf("clean restart replayed %d records (wal %d), want 0", st.ReplayedRecords, st.WALRecords)
	}
	if got := searchAll(t, r); !reflect.DeepEqual(got, want) {
		t.Errorf("search diverged after clean restart")
	}
}

// shardWALSegments lists the WAL segment paths of shard 0 in dir.
func shardWALSegments(t *testing.T, dir string) []string {
	t.Helper()
	walDir := filepath.Join(dir, shardDirName(0), "wal")
	ents, err := os.ReadDir(walDir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		out = append(out, filepath.Join(walDir, e.Name()))
	}
	return out
}

// TestRecoverTornWALTail: a crash mid-append leaves a half-written
// record; recovery keeps the clean prefix and drops the torn record.
func TestRecoverTornWALTail(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, 1) // single shard: the torn record is the last add
	for _, d := range persistDocs {
		if _, err := s.Add(d, nil); err != nil {
			t.Fatal(err)
		}
	}
	s.crash()
	segs := shardWALSegments(t, dir)
	last := segs[len(segs)-1]
	st, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, st.Size()-5); err != nil {
		t.Fatal(err)
	}
	r := openTestStore(t, dir, 1)
	defer r.Close()
	if r.Len() != len(persistDocs)-1 {
		t.Fatalf("recovered %d docs after torn tail, want %d", r.Len(), len(persistDocs)-1)
	}
	// The store must keep accepting writes on the repaired log.
	if _, err := r.Add(persistDocs[len(persistDocs)-1], nil); err != nil {
		t.Fatal(err)
	}
	if r.Len() != len(persistDocs) {
		t.Errorf("len after re-add = %d, want %d", r.Len(), len(persistDocs))
	}
}

// TestRecoverCorruptCRC: a bit-flipped record is dropped with the rest
// of the tail rather than applied as garbage.
func TestRecoverCorruptCRC(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, 1)
	for _, d := range persistDocs[:3] {
		if _, err := s.Add(d, nil); err != nil {
			t.Fatal(err)
		}
	}
	s.crash()
	segs := shardWALSegments(t, dir)
	data, err := os.ReadFile(segs[len(segs)-1])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff // corrupt the last record's payload
	if err := os.WriteFile(segs[len(segs)-1], data, 0o644); err != nil {
		t.Fatal(err)
	}
	r := openTestStore(t, dir, 1)
	defer r.Close()
	if r.Len() != 2 {
		t.Fatalf("recovered %d docs after crc corruption, want 2", r.Len())
	}
}

// TestDedupeReplay: deletes already reflected in the checkpoint (a
// crash between checkpoint and WAL truncation) are filtered; ordering
// against adds in the same log is honoured.
func TestDedupeReplay(t *testing.T) {
	db, err := vecdb.NewDefault(32)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddWithID(1, "present in checkpoint", nil); err != nil {
		t.Fatal(err)
	}
	ms := []vecdb.Mutation{
		{Op: vecdb.OpDelete, ID: 1},             // in checkpoint → keep
		{Op: vecdb.OpDelete, ID: 1},             // now gone → drop
		{Op: vecdb.OpAdd, ID: 2, Text: "two"},   // keep
		{Op: vecdb.OpDelete, ID: 2},             // added above → keep
		{Op: vecdb.OpDelete, ID: 2},             // gone again → drop
		{Op: vecdb.OpDelete, ID: 99},            // never existed → drop
		{Op: vecdb.OpAdd, ID: 1, Text: "again"}, // keep
	}
	// dedupeReplay compacts in place, so capture expectations first.
	want := []vecdb.Mutation{ms[0], ms[2], ms[3], ms[6]}
	got := dedupeReplay(db, ms)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("dedupeReplay = %+v\nwant %+v", got, want)
	}
	// The filtered log must replay cleanly.
	if err := db.ApplyAll(got); err != nil {
		t.Fatalf("replay of filtered log: %v", err)
	}
	if db.Len() != 1 {
		t.Errorf("len = %d, want 1", db.Len())
	}
}

// TestReopenParameterMismatch: a data directory remembers its shard
// count and embedding dim; incompatible reopens fail loudly instead of
// misrouting the hash space.
func TestReopenParameterMismatch(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, 4)
	if _, err := s.Add(persistDocs[0], nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenShardedDefault(dir, 8, 64, 128, PersistConfig{CheckpointEvery: -1}); err == nil {
		t.Error("reopen with different shard count succeeded")
	}
	if _, err := OpenShardedDefault(dir, 4, 128, 128, PersistConfig{CheckpointEvery: -1}); err == nil {
		t.Error("reopen with different dim succeeded")
	}
	// Shards=0 adopts the stored count.
	r, err := OpenShardedDefault(dir, 0, 64, 128, PersistConfig{CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Shards() != 4 {
		t.Errorf("adopted %d shards, want 4", r.Shards())
	}
	if r.Len() != 1 {
		t.Errorf("recovered %d docs, want 1", r.Len())
	}
}

// TestBackgroundCheckpointer: with a short period, dirty shards are
// checkpointed and their WALs truncated without any explicit Save.
func TestBackgroundCheckpointer(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenShardedDefault(dir, 2, 64, 128, PersistConfig{CheckpointEvery: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range persistDocs {
		if _, err := s.Add(d, nil); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.PersistStats()
		if st.Checkpoints > 0 && st.WALRecords == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background checkpointer never drained the WAL: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	s.crash()
	r := openTestStore(t, dir, 2)
	defer r.Close()
	if r.Len() != len(persistDocs) {
		t.Fatalf("recovered %d docs from background checkpoint, want %d", r.Len(), len(persistDocs))
	}
	if st := r.PersistStats(); st.ReplayedRecords != 0 {
		t.Errorf("replayed %d records, want 0 (all state in checkpoint)", st.ReplayedRecords)
	}
}

// TestAddBulkDurable: bulk writes journal through the same WAL path
// and survive a crash; IDs come back in input order and unique.
func TestAddBulkDurable(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, 4)
	ids, err := s.AddBulk(persistDocs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(persistDocs) {
		t.Fatalf("got %d ids, want %d", len(ids), len(persistDocs))
	}
	seen := map[int64]bool{}
	for i, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
		doc, err := s.Get(id)
		if err != nil {
			t.Fatalf("get %d: %v", id, err)
		}
		if doc.Text != persistDocs[i] {
			t.Errorf("id %d text = %q, want %q", id, doc.Text, persistDocs[i])
		}
	}
	want := searchAll(t, s)
	s.crash()
	r := openTestStore(t, dir, 4)
	defer r.Close()
	if r.Len() != len(persistDocs) {
		t.Fatalf("recovered %d docs after bulk ingest, want %d", r.Len(), len(persistDocs))
	}
	if got := searchAll(t, r); !reflect.DeepEqual(got, want) {
		t.Errorf("bulk-ingested search diverged after recovery")
	}
}

// TestTypedStoreErrors: misses surface as ErrNotFound so the HTTP
// layer can answer 404 instead of 500.
func TestTypedStoreErrors(t *testing.T) {
	s, err := NewShardedDefault(2, 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(12345); !errors.Is(err, ErrNotFound) {
		t.Errorf("Delete(absent) = %v, want ErrNotFound", err)
	}
	if _, err := s.Get(12345); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(absent) = %v, want ErrNotFound", err)
	}
	// Memory-only stores have no durable layer to save or close.
	if err := s.Save(); err == nil {
		t.Error("Save on memory-only store succeeded")
	}
	if err := s.Close(); err != nil {
		t.Errorf("Close on memory-only store: %v", err)
	}
}

// TestConcurrentWritesWithCheckpoints: writers, deleters and
// checkpoints race; the recovered store matches the final live state.
// Run under -race this also proves the locking discipline.
func TestConcurrentWritesWithCheckpoints(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, 4)
	const writers, perWriter = 4, 25
	var wg sync.WaitGroup
	idCh := make(chan int64, writers*perWriter)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id, err := s.Add(fmt.Sprintf("writer %d document %d about store policy", w, i), nil)
				if err != nil {
					t.Error(err)
					return
				}
				idCh <- id
			}
		}(w)
	}
	// Checkpoint concurrently with the writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := s.Save(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	close(idCh)
	// Delete a third of what was written.
	n := 0
	for id := range idCh {
		if n%3 == 0 {
			if err := s.Delete(id); err != nil {
				t.Fatal(err)
			}
		}
		n++
	}
	wantLen := s.Len()
	s.crash()
	r := openTestStore(t, dir, 4)
	defer r.Close()
	if r.Len() != wantLen {
		t.Fatalf("recovered %d docs, want %d", r.Len(), wantLen)
	}
}

// TestSegmentedWALRecovery: tiny segments force rotation mid-traffic;
// replay must walk every segment in order.
func TestSegmentedWALRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenShardedDefault(dir, 1, 64, 16, PersistConfig{
		CheckpointEvery: -1,
		SegmentBytes:    128,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := s.Add(fmt.Sprintf("document %d about shop operations and staffing", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	s.crash()
	if segs := shardWALSegments(t, dir); len(segs) < 2 {
		t.Fatalf("expected multiple segments, got %d", len(segs))
	}
	r, err := OpenShardedDefault(dir, 1, 64, 16, PersistConfig{CheckpointEvery: -1, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 30 {
		t.Fatalf("recovered %d docs across segments, want 30", r.Len())
	}
}

// TestFsyncPolicies: every policy journals records that survive a
// same-machine crash (fsync strength only matters for machine loss,
// which a unit test cannot simulate).
func TestFsyncPolicies(t *testing.T) {
	for _, policy := range []storage.SyncPolicy{storage.SyncNever, storage.SyncAlways, storage.SyncInterval} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			s, err := OpenShardedDefault(dir, 2, 64, 16, PersistConfig{
				CheckpointEvery: -1,
				Fsync:           policy,
				SyncEvery:       5 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range persistDocs[:3] {
				if _, err := s.Add(d, nil); err != nil {
					t.Fatal(err)
				}
			}
			s.crash()
			r := openTestStore(t, dir, 2)
			defer r.Close()
			if r.Len() != 3 {
				t.Errorf("policy %v: recovered %d docs, want 3", policy, r.Len())
			}
		})
	}
}

// TestServerReopenAutoShards: serve.New with Shards=0 must adopt the
// stored shard count when reopening a data dir, even when the machine
// default differs — the auto value is resolved per-machine, the layout
// is not.
func TestServerReopenAutoShards(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, 3) // a count no machine default would pick
	if _, err := s.Add(persistDocs[0], nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Detector: calibratedDetector(t), DataDir: dir, Dim: 64,
		Persist: PersistConfig{CheckpointEvery: -1},
	})
	if err != nil {
		t.Fatalf("reopen with auto shards: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	if srv.Store().Shards() != 3 {
		t.Errorf("adopted %d shards, want 3", srv.Store().Shards())
	}
	if srv.Store().Len() != 1 {
		t.Errorf("recovered %d docs, want 1", srv.Store().Len())
	}
}

// TestAddOversizedMetaRejectedBeforeApply: a mutation the WAL could
// not journal faithfully is rejected with nothing applied.
func TestAddOversizedMetaRejectedBeforeApply(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, 2)
	defer s.Close()
	bigKey := strings.Repeat("k", 1<<16)
	if _, err := s.Add("text", map[string]string{bigKey: "v"}); err == nil {
		t.Fatal("oversized meta key accepted")
	}
	if s.Len() != 0 {
		t.Errorf("rejected add left %d docs applied", s.Len())
	}
	if st := s.PersistStats(); st.AppendedRecords != 0 {
		t.Errorf("rejected add journaled %d records", st.AppendedRecords)
	}
}
