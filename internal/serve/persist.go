package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/vecdb"
)

// Durable layout under a data directory:
//
//	data/
//	  store.json            — shard count + embedding dim, written once
//	  shard-0000/
//	    checkpoint.snap     — vecdb checkpoint via the storage codec
//	    wal/wal-…​.seg       — mutations journaled since that checkpoint
//	  shard-0001/ …
//
// Every write first mutates the in-memory shard, then appends the
// encoded mutation to the shard's WAL before the call returns, all
// under that shard's persistence mutex, so WAL order equals apply
// order. Recovery loads each shard's checkpoint and replays its WAL on
// top — shards recover in parallel, and replay re-embeds on all cores.
// A background checkpointer snapshots dirty shards and truncates their
// WALs; a crash between those two steps is benign because replay is
// idempotent (re-adds replace, deletes of absent documents are
// filtered against the recovering state). See docs/persistence.md.

// PersistConfig tunes the durable layer. Zero values take the
// documented defaults.
type PersistConfig struct {
	// Fsync is the WAL flush policy (default storage.SyncNever: the OS
	// flushes; rotation, truncation, checkpoints and Close always sync).
	Fsync storage.SyncPolicy
	// SyncEvery is the flush period under storage.SyncInterval (default
	// 100ms).
	SyncEvery time.Duration
	// SegmentBytes rotates WAL segments (default 4 MiB).
	SegmentBytes int64
	// CheckpointEvery is the background checkpoint period (default 30s;
	// negative disables the background checkpointer — checkpoints then
	// happen only on Save, Close, or the admin endpoint).
	CheckpointEvery time.Duration
	// CheckpointBytes triggers an early checkpoint once a shard's WAL
	// exceeds this size (default 8 MiB).
	CheckpointBytes int64
	// Telemetry, when non-nil, receives wal_append / wal_fsync /
	// checkpoint stage timings (shared across shards).
	Telemetry *telemetry.Registry
}

func (c PersistConfig) withDefaults() PersistConfig {
	if c.SyncEvery <= 0 {
		c.SyncEvery = 100 * time.Millisecond
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 4 << 20
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 30 * time.Second
	}
	if c.CheckpointBytes <= 0 {
		c.CheckpointBytes = 8 << 20
	}
	return c
}

// storeMeta pins the layout parameters a data directory was created
// with; reopening with incompatible parameters is an error rather than
// a silently misrouted hash space.
type storeMeta struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
	Dim     int `json:"dim"`
}

const storeMetaVersion = 1

const storeMetaFile = "store.json"

const checkpointFile = "checkpoint.snap"

// ErrNoDataDir reports a durability operation on a memory-only store,
// so callers can distinguish a misdirected request from a failing
// disk.
var ErrNoDataDir = errors.New("serve: store has no data directory")

// storeMetaExists reports whether dir already holds store metadata —
// i.e. whether an Open would recover an existing layout rather than
// create one.
func storeMetaExists(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, storeMetaFile))
	return err == nil
}

// writeFileAtomic writes data to path via temp file + fsync + rename,
// fsyncing the directory after.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// durableShard pairs one vecdb shard with its WAL. Its mutex orders
// apply+journal against checkpoint+truncate.
type durableShard struct {
	mu  sync.Mutex
	dir string
	wal *storage.WAL
	// base is the highest sequence number folded into the checkpoint —
	// the WAL retains exactly the records with seq > base, so
	// MutationsSince(since) can serve a delta iff since >= base.
	// Updated after every truncation; read lock-free by the resync
	// read path.
	base atomic.Uint64
}

// persistence is the durable state attached to a ShardedDB opened with
// OpenSharded. A nil persistence means a memory-only store.
type persistence struct {
	cfg    PersistConfig
	dir    string
	shards []*durableShard

	kick chan struct{} // early-checkpoint signal from the write path
	stop chan struct{}
	done chan struct{}

	appended    atomic.Uint64
	replayed    atomic.Uint64
	checkpoints atomic.Uint64
	ckErrors    atomic.Uint64
	syncErrors  atomic.Uint64
	lastCk      atomic.Int64 // unix nanos; 0 = never
	closeOnce   sync.Once

	// checkpointH times checkpoint+truncate; nil (no-op) without a
	// registry.
	checkpointH *telemetry.Histogram
}

// shardDirName formats the directory for shard i.
func shardDirName(i int) string { return fmt.Sprintf("shard-%04d", i) }

// OpenSharded opens (creating if needed) a durable sharded store
// rooted at dir: each shard recovers from its checkpoint plus WAL
// replay, all shards in parallel, and a background checkpointer runs
// until Close. n is the shard count for a fresh directory; reopening
// an existing directory takes the count from its metadata and rejects
// a conflicting non-zero n, since documents are hash-routed by the
// original count.
func OpenSharded(dir string, n int, embed vecdb.Embedder, mkIndex func() (vecdb.Index, error), pcfg PersistConfig) (*ShardedDB, error) {
	if embed == nil || mkIndex == nil {
		return nil, errors.New("serve: nil embedder or index factory")
	}
	pcfg = pcfg.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: data dir: %w", err)
	}
	meta, err := loadOrInitMeta(dir, n, embed.Dim())
	if err != nil {
		return nil, err
	}
	n = meta.Shards

	p := &persistence{
		cfg:    pcfg,
		dir:    dir,
		shards: make([]*durableShard, n),
		kick:   make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	p.checkpointH = pcfg.Telemetry.Histogram("stage_duration_seconds",
		"Hot-path stage latency in seconds.", nil, telemetry.L("stage", "checkpoint"))
	s := &ShardedDB{embed: embed, shards: make([]*vecdb.DB, n), persist: p}

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			db, ds, replayed, err := recoverShard(filepath.Join(dir, shardDirName(i)), embed, mkIndex, pcfg)
			if err != nil {
				errs[i] = fmt.Errorf("serve: shard %d: %w", i, err)
				return
			}
			s.shards[i], p.shards[i] = db, ds
			p.replayed.Add(replayed)
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		for _, ds := range p.shards {
			if ds != nil {
				ds.wal.Close()
			}
		}
		return nil, err
	}

	// Restore the global ID allocator past every recovered document.
	var next int64 = 1
	for _, db := range s.shards {
		if id := db.NextID(); id > next {
			next = id
		}
	}
	s.nextID.Store(next - 1)

	go p.run(s)
	return s, nil
}

// OpenShardedDefault is OpenSharded over a hashed embedder and flat
// cosine indexes, with the same LRU-cached query embedder as
// NewShardedDefault. Recovery re-embeds through the raw embedder so
// replaying a million passages cannot evict hot query vectors.
func OpenShardedDefault(dir string, n, dim, embedCache int, pcfg PersistConfig) (*ShardedDB, error) {
	return OpenShardedWithIndex(dir, n, dim, embedCache, IndexConfig{}, pcfg)
}

// loadOrInitMeta reads the store metadata, creating it on first open.
func loadOrInitMeta(dir string, n, dim int) (storeMeta, error) {
	path := filepath.Join(dir, storeMetaFile)
	raw, err := os.ReadFile(path)
	switch {
	case err == nil:
		var meta storeMeta
		if err := json.Unmarshal(raw, &meta); err != nil {
			return meta, fmt.Errorf("serve: store metadata: %w", err)
		}
		if meta.Version != storeMetaVersion {
			return meta, fmt.Errorf("serve: unsupported store metadata version %d", meta.Version)
		}
		if n > 0 && n != meta.Shards {
			return meta, fmt.Errorf("serve: data dir was created with %d shards, cannot reopen with %d", meta.Shards, n)
		}
		if meta.Dim != dim {
			return meta, fmt.Errorf("serve: data dir was created with dim %d, cannot reopen with %d", meta.Dim, dim)
		}
		return meta, nil
	case os.IsNotExist(err):
		if n <= 0 {
			return storeMeta{}, fmt.Errorf("serve: shard count must be positive, got %d", n)
		}
		meta := storeMeta{Version: storeMetaVersion, Shards: n, Dim: dim}
		raw, err := json.Marshal(meta)
		if err != nil {
			return meta, err
		}
		// The metadata pins the hash layout for the life of the store —
		// write it with the same temp+fsync+rename discipline as every
		// other durable file, so a crash can never leave it torn (or
		// missing while shard data exists).
		if err := writeFileAtomic(path, raw); err != nil {
			return meta, fmt.Errorf("serve: store metadata: %w", err)
		}
		return meta, nil
	default:
		return storeMeta{}, fmt.Errorf("serve: store metadata: %w", err)
	}
}

// recoverShard rebuilds one shard: checkpoint (if any), then WAL
// replay on top. It returns the live DB, the shard's durable state,
// and the number of replayed records.
func recoverShard(dir string, embed vecdb.Embedder, mkIndex func() (vecdb.Index, error), pcfg PersistConfig) (*vecdb.DB, *durableShard, uint64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, 0, err
	}
	idx, err := mkIndex()
	if err != nil {
		return nil, nil, 0, err
	}
	var db *vecdb.DB
	ckPath := filepath.Join(dir, checkpointFile)
	db, err = vecdb.LoadFile(ckPath, embed, idx)
	if os.IsNotExist(err) {
		db, err = vecdb.New(embed, idx)
	}
	if err != nil {
		return nil, nil, 0, fmt.Errorf("checkpoint: %w", err)
	}

	wal, err := storage.OpenWAL(filepath.Join(dir, "wal"), storage.WALOptions{
		SegmentBytes: pcfg.SegmentBytes,
		Sync:         pcfg.Fsync,
		Telemetry:    pcfg.Telemetry,
	})
	if err != nil {
		return nil, nil, 0, err
	}
	// The checkpoint pins the seq its contents are current as of; WAL
	// records carry their own seqs on top (legacy unframed records get
	// the next number in the stream). Replay restores the position from
	// the records, not by counting applies — dedupeReplay may drop
	// records the checkpoint already reflects.
	ckSeq := db.Seq()
	maxSeq, firstSeq := ckSeq, uint64(0)
	haveFirst := false
	var ms []vecdb.Mutation
	if _, err := wal.Replay(func(payload []byte) error {
		seq, raw, framed, err := storage.DecodeSeqPayload(payload)
		if err != nil {
			return err
		}
		if !framed {
			seq = maxSeq + 1
		}
		m, err := vecdb.DecodeMutation(raw)
		if err != nil {
			return err
		}
		if !haveFirst {
			firstSeq, haveFirst = seq, true
		}
		if seq > maxSeq {
			maxSeq = seq
		}
		ms = append(ms, m)
		return nil
	}); err != nil {
		wal.Close()
		return nil, nil, 0, err
	}
	ms = dedupeReplay(db, ms)
	if err := db.ApplyAll(ms); err != nil {
		wal.Close()
		return nil, nil, 0, fmt.Errorf("wal replay: %w", err)
	}
	db.SetSeq(maxSeq)
	ds := &durableShard{dir: dir, wal: wal}
	// A crash between checkpoint and truncation leaves records the
	// checkpoint already covers: the delta floor is then the seq just
	// below the first retained record, not the checkpoint seq.
	base := ckSeq
	if haveFirst && firstSeq-1 < base {
		base = firstSeq - 1
	}
	ds.base.Store(base)
	return db, ds, uint64(len(ms)), nil
}

// dedupeReplay drops deletes whose target is already absent from the
// recovering state. Such records appear when a crash lands between a
// checkpoint's rename and the WAL truncation that follows it: the
// checkpoint already reflects the delete, so applying it again must be
// a no-op, not an ErrNotFound. Adds need no filtering — re-adding
// replaces the identical document.
func dedupeReplay(db *vecdb.DB, ms []vecdb.Mutation) []vecdb.Mutation {
	out := ms[:0]
	present := make(map[int64]bool, len(ms))
	tracked := make(map[int64]bool, len(ms))
	for _, m := range ms {
		switch m.Op {
		case vecdb.OpAdd:
			present[m.ID], tracked[m.ID] = true, true
			out = append(out, m)
		case vecdb.OpDelete:
			exists := present[m.ID]
			if !tracked[m.ID] {
				_, err := db.Get(m.ID)
				exists = err == nil
			}
			present[m.ID], tracked[m.ID] = false, true
			if exists {
				out = append(out, m)
			}
		default:
			out = append(out, m) // let ApplyAll surface the error
		}
	}
	return out
}

// run is the background loop: periodic WAL flushing under
// SyncInterval, periodic checkpoints, and early checkpoints kicked by
// the write path when a WAL outgrows CheckpointBytes.
func (p *persistence) run(s *ShardedDB) {
	defer close(p.done)
	var ckC, syncC <-chan time.Time
	if p.cfg.CheckpointEvery > 0 {
		t := time.NewTicker(p.cfg.CheckpointEvery)
		defer t.Stop()
		ckC = t.C
	}
	if p.cfg.Fsync == storage.SyncInterval {
		t := time.NewTicker(p.cfg.SyncEvery)
		defer t.Stop()
		syncC = t.C
	}
	// Size-triggered kicks are rate-limited: while checkpoints are
	// failing (e.g. a full disk) the WAL stays over CheckpointBytes and
	// every write batch re-kicks, which must not turn into a snapshot
	// attempt per write exactly when the disk is struggling. The
	// periodic ticker remains the retry path.
	var lastKick time.Time
	for {
		select {
		case <-p.stop:
			return
		case <-syncC:
			for _, ds := range p.shards {
				if err := ds.wal.Sync(); err != nil {
					// Durability has silently degraded to page-cache-only;
					// surface it through /stats rather than dropping it.
					p.syncErrors.Add(1)
				}
			}
		case <-ckC:
			p.checkpointDirty(s)
		case <-p.kick:
			if time.Since(lastKick) >= time.Second {
				lastKick = time.Now()
				p.checkpointDirty(s)
			}
		}
	}
}

// checkpointDirty checkpoints every shard whose WAL holds records.
func (p *persistence) checkpointDirty(s *ShardedDB) {
	for i, ds := range p.shards {
		if ds.wal.Records() == 0 {
			continue
		}
		if err := p.checkpointShard(s, i); err != nil {
			p.ckErrors.Add(1)
		}
	}
}

// checkpointShard snapshots shard i and truncates its WAL. Writers to
// the shard block for the duration; readers are unaffected.
func (p *persistence) checkpointShard(s *ShardedDB, i int) error {
	ds := p.shards[i]
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return p.checkpointShardLocked(s, i)
}

// checkpointShardLocked is checkpointShard for callers already holding
// the shard's persistence mutex (the snapshot-resync apply path, which
// must pin its adopted seq durably in the same critical section).
func (p *persistence) checkpointShardLocked(s *ShardedDB, i int) error {
	start := time.Now()
	defer p.checkpointH.ObserveSince(start)
	ds := p.shards[i]
	if err := s.shards[i].SaveFile(filepath.Join(ds.dir, checkpointFile)); err != nil {
		return err
	}
	if err := ds.wal.Truncate(); err != nil {
		return err
	}
	// Everything up to the shard's current seq is now in the
	// checkpoint; the WAL serves deltas only past it.
	ds.base.Store(s.shards[i].Seq())
	p.checkpoints.Add(1)
	p.lastCk.Store(time.Now().UnixNano())
	return nil
}

// journal appends already-applied, already-encoded mutations to shard
// i's WAL. Callers hold the shard's persistence mutex.
func (p *persistence) journal(i int, payloads [][]byte) error {
	ds := p.shards[i]
	if err := ds.wal.AppendBatch(payloads); err != nil {
		return fmt.Errorf("serve: journal: %w", err)
	}
	p.appended.Add(uint64(len(payloads)))
	if ds.wal.Size() > p.cfg.CheckpointBytes {
		select {
		case p.kick <- struct{}{}:
		default:
		}
	}
	return nil
}

// Save checkpoints every dirty shard now — the graceful path behind
// POST /admin/checkpoint and shutdown. It returns the first error;
// remaining shards are still attempted.
func (s *ShardedDB) Save() error {
	p := s.persist
	if p == nil {
		return ErrNoDataDir
	}
	var firstErr error
	for i, ds := range p.shards {
		if ds.wal.Records() == 0 {
			continue
		}
		if err := p.checkpointShard(s, i); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Close stops the background checkpointer, takes a final checkpoint,
// and closes every WAL. It is a no-op on a memory-only store and safe
// to call twice.
func (s *ShardedDB) Close() error {
	p := s.persist
	if p == nil {
		return nil
	}
	var err error
	p.closeOnce.Do(func() {
		close(p.stop)
		<-p.done
		err = s.Save()
		for _, ds := range p.shards {
			if cerr := ds.wal.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	})
	return err
}

// CloseNoCheckpoint stops the background checkpointer and closes the
// WALs without taking a final checkpoint, leaving the journal intact.
// This is the fast-shutdown path — boot pays for it with a replay —
// and doubles as the crash simulation in recovery tests and
// benchmarks. No-op on a memory-only store.
func (s *ShardedDB) CloseNoCheckpoint() {
	p := s.persist
	if p == nil {
		return
	}
	p.closeOnce.Do(func() {
		close(p.stop)
		<-p.done
		for _, ds := range p.shards {
			ds.wal.Close()
		}
	})
}

// crash is the recovery tests' alias for an ungraceful stop.
func (s *ShardedDB) crash() { s.CloseNoCheckpoint() }

// PersistStats is the durability section of the /stats snapshot.
type PersistStats struct {
	// Enabled reports whether the store has a data directory.
	Enabled bool `json:"enabled"`
	// WALBytes / WALRecords describe what is currently journaled and
	// not yet folded into a checkpoint, summed across shards.
	WALBytes   int64  `json:"wal_bytes"`
	WALRecords uint64 `json:"wal_records"`
	// AppendedRecords counts mutations journaled since open.
	AppendedRecords uint64 `json:"appended_records"`
	// ReplayedRecords counts WAL records replayed during recovery.
	ReplayedRecords uint64 `json:"replayed_records"`
	// Checkpoints / CheckpointErrors count checkpoint attempts since
	// open.
	Checkpoints      uint64 `json:"checkpoints"`
	CheckpointErrors uint64 `json:"checkpoint_errors"`
	// SyncErrors counts failed background WAL flushes (SyncInterval
	// policy) — non-zero means durability has degraded to page-cache
	// semantics.
	SyncErrors uint64 `json:"sync_errors"`
	// LastCheckpointAgeSeconds is the age of the newest checkpoint
	// taken by this process; -1 before the first one.
	LastCheckpointAgeSeconds float64 `json:"last_checkpoint_age_seconds"`
}

// PersistStats reports the store's durability counters.
func (s *ShardedDB) PersistStats() PersistStats {
	p := s.persist
	if p == nil {
		return PersistStats{}
	}
	st := PersistStats{
		Enabled:                  true,
		AppendedRecords:          p.appended.Load(),
		ReplayedRecords:          p.replayed.Load(),
		Checkpoints:              p.checkpoints.Load(),
		CheckpointErrors:         p.ckErrors.Load(),
		SyncErrors:               p.syncErrors.Load(),
		LastCheckpointAgeSeconds: -1,
	}
	for _, ds := range p.shards {
		st.WALBytes += ds.wal.Size()
		st.WALRecords += ds.wal.Records()
	}
	if last := p.lastCk.Load(); last > 0 {
		st.LastCheckpointAgeSeconds = time.Since(time.Unix(0, last)).Seconds()
	}
	return st
}
