package serve

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrOverloaded reports that both the in-flight slots and the waiting
// queue are full; HTTP handlers map it to 429 Too Many Requests.
var ErrOverloaded = errors.New("serve: overloaded, request shed")

// Admission is the load-shedding gate in front of the serving hot
// path: at most maxInFlight requests execute concurrently, at most
// maxQueue more wait for a slot, and everything beyond that is shed
// immediately instead of piling up unbounded goroutines.
type Admission struct {
	slots chan struct{} // in-flight permits
	queue chan struct{} // waiting permits
	shed  atomic.Uint64
}

// NewAdmission builds a gate with the given capacities (both must be
// at least 1; maxQueue 0 disables waiting entirely).
func NewAdmission(maxInFlight, maxQueue int) (*Admission, error) {
	if maxInFlight <= 0 {
		return nil, errors.New("serve: maxInFlight must be positive")
	}
	if maxQueue < 0 {
		return nil, errors.New("serve: maxQueue must be non-negative")
	}
	return &Admission{
		slots: make(chan struct{}, maxInFlight),
		queue: make(chan struct{}, maxQueue),
	}, nil
}

// Acquire claims an execution slot, waiting in the bounded queue if
// none is free. It returns the release function on success,
// ErrOverloaded when the queue is full, or ctx.Err() if the caller's
// deadline expires while queued.
func (a *Admission) Acquire(ctx context.Context) (release func(), err error) {
	release = func() { <-a.slots }
	// Fast path: free slot, no queueing.
	select {
	case a.slots <- struct{}{}:
		return release, nil
	default:
	}
	// Claim a queue position or shed.
	select {
	case a.queue <- struct{}{}:
	default:
		a.shed.Add(1)
		return nil, ErrOverloaded
	}
	defer func() { <-a.queue }()
	select {
	case a.slots <- struct{}{}:
		return release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// InFlight reports currently executing requests.
func (a *Admission) InFlight() int { return len(a.slots) }

// QueueDepth reports requests currently waiting for a slot.
func (a *Admission) QueueDepth() int { return len(a.queue) }

// Shed reports the lifetime count of rejected requests.
func (a *Admission) Shed() uint64 { return a.shed.Load() }
