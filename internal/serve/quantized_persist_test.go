package serve

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// int8FlatConfig is the quantized store configuration under test: flat
// scans over int8 codes with exact re-rank.
var int8FlatConfig = IndexConfig{Kind: "flat", Quantize: "int8", RerankK: 16}

func openQuantizedStore(t *testing.T, dir string, shards int) *ShardedDB {
	t.Helper()
	s, err := OpenShardedWithIndex(dir, shards, 64, 128, int8FlatConfig,
		PersistConfig{CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestQuantizedRecoveryBitIdentical: a quantized store recovered from
// checkpoint + WAL replay serves bit-identical results and preserves
// seq/checksum parity — quantization state is derived deterministically
// from the journaled documents, never persisted.
func TestQuantizedRecoveryBitIdentical(t *testing.T) {
	dir := t.TempDir()
	s := openQuantizedStore(t, dir, 4)
	var ids []int64
	for _, d := range persistDocs[:3] {
		id, err := s.Add(d, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Fold the first half into a checkpoint so recovery exercises both
	// the snapshot path and WAL replay on top.
	if err := s.Save(); err != nil {
		t.Fatal(err)
	}
	for _, d := range persistDocs[3:] {
		id, err := s.Add(d, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := s.Delete(ids[1]); err != nil {
		t.Fatal(err)
	}
	want := searchAll(t, s)
	wantLen, wantSeq, wantCheck := s.Len(), s.Seq(), s.Checksum()
	s.crash()

	r := openQuantizedStore(t, dir, 4)
	defer r.Close()
	if r.Len() != wantLen {
		t.Fatalf("recovered %d docs, want %d", r.Len(), wantLen)
	}
	if got := r.Seq(); got != wantSeq {
		t.Errorf("recovered seq %d, want %d", got, wantSeq)
	}
	if got := r.Checksum(); got != wantCheck {
		t.Errorf("recovered checksum %#x, want %#x", got, wantCheck)
	}
	if got := searchAll(t, r); !reflect.DeepEqual(got, want) {
		t.Errorf("quantized search diverged after recovery:\n got %+v\nwant %+v", got, want)
	}
	// The recovered indexes really are quantized: the code mirror is
	// populated and its scan working set beats the float path.
	mem := r.IndexStats().Memory
	if mem.CodeBytes == 0 {
		t.Fatal("recovered store reports no quantized code storage")
	}
	if mem.ScanBytes >= mem.FloatBytes {
		t.Errorf("quantized scan bytes %d not below float bytes %d", mem.ScanBytes, mem.FloatBytes)
	}
}

// TestQuantizedRerankTelemetry: quantized searches report the rerank
// stage into the shared stage_duration_seconds series.
func TestQuantizedRerankTelemetry(t *testing.T) {
	s, err := NewShardedWithIndex(2, 64, 128, int8FlatConfig)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	s.SetTelemetry(reg)
	for _, d := range persistDocs {
		if _, err := s.Add(d, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Search("when does the store open", 3); err != nil {
		t.Fatal(err)
	}
	snaps := reg.HistogramSnapshots("stage_duration_seconds")
	if snaps["stage=rerank"].Count == 0 {
		t.Fatalf("no rerank observations; stages seen: %v", keysOf(snaps))
	}
}

func keysOf[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestIndexConfigValidation: startup validation rejects the mistakes
// the flags can express.
func TestIndexConfigValidation(t *testing.T) {
	cases := []struct {
		cfg  IndexConfig
		want string // substring of the error; empty means valid
	}{
		{IndexConfig{}, ""},
		{IndexConfig{Kind: "ivf", NList: 32, NProbe: 4}, ""},
		{IndexConfig{Kind: "hnsw", Quantize: "int8"}, ""},
		{IndexConfig{Kind: "annoy"}, "unknown index kind"},
		{IndexConfig{Quantize: "fp4"}, "unknown quantization"},
		{IndexConfig{RerankK: -1}, "rerank-k"},
		{IndexConfig{Kind: "ivf", NList: 4, NProbe: 9}, "nprobe"},
		{IndexConfig{Kind: "hnsw", M: 8, EfConstruction: 4}, "ef-construction"},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if c.want == "" {
			if err != nil {
				t.Errorf("%+v: unexpected error %v", c.cfg, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%+v: error %v, want substring %q", c.cfg, err, c.want)
		}
	}
}
