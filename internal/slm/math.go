package slm

import (
	"fmt"
	"math"
)

// This file holds the dense linear-algebra kernels behind the
// transformer engine. Everything is float32 row-major, mirroring how
// inference runtimes lay out weights; accumulation happens in float64
// where it protects softmax/norm stability.

// matVec computes out = M·x for an (rows×cols) row-major matrix M.
// len(x) must equal cols and len(out) rows; the function panics on
// shape mismatch because that is always a programming error, never a
// data error.
func matVec(out []float32, m []float32, x []float32, rows, cols int) {
	if len(m) != rows*cols || len(x) != cols || len(out) != rows {
		panic(fmt.Sprintf("slm: matVec shape mismatch m=%d x=%d out=%d rows=%d cols=%d",
			len(m), len(x), len(out), rows, cols))
	}
	for r := 0; r < rows; r++ {
		row := m[r*cols : (r+1)*cols]
		var acc float32
		// 4-way unrolled dot product; the compiler keeps the
		// accumulators in registers.
		i := 0
		var a0, a1, a2, a3 float32
		for ; i+4 <= cols; i += 4 {
			a0 += row[i] * x[i]
			a1 += row[i+1] * x[i+1]
			a2 += row[i+2] * x[i+2]
			a3 += row[i+3] * x[i+3]
		}
		acc = a0 + a1 + a2 + a3
		for ; i < cols; i++ {
			acc += row[i] * x[i]
		}
		out[r] = acc
	}
}

// dot computes the inner product of equal-length vectors.
func dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("slm: dot length mismatch %d vs %d", len(a), len(b)))
	}
	var acc float32
	for i := range a {
		acc += a[i] * b[i]
	}
	return acc
}

// addInPlace computes a += b.
func addInPlace(a, b []float32) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("slm: add length mismatch %d vs %d", len(a), len(b)))
	}
	for i := range a {
		a[i] += b[i]
	}
}

// scaleInPlace computes a *= s.
func scaleInPlace(a []float32, s float32) {
	for i := range a {
		a[i] *= s
	}
}

// layerNorm normalizes x to zero mean and unit variance, then applies
// elementwise gain and bias. eps guards the division for near-constant
// activations.
func layerNorm(x, gain, bias []float32, eps float64) {
	n := len(x)
	if n == 0 {
		return
	}
	var mean float64
	for _, v := range x {
		mean += float64(v)
	}
	mean /= float64(n)
	var varsum float64
	for _, v := range x {
		d := float64(v) - mean
		varsum += d * d
	}
	inv := 1 / math.Sqrt(varsum/float64(n)+eps)
	for i := range x {
		x[i] = float32((float64(x[i])-mean)*inv)*gain[i] + bias[i]
	}
}

// gelu applies the tanh-approximated Gaussian error linear unit used by
// GPT-family FFNs.
func gelu(x []float32) {
	const c = 0.7978845608028654 // sqrt(2/π)
	for i, v := range x {
		f := float64(v)
		x[i] = float32(0.5 * f * (1 + math.Tanh(c*(f+0.044715*f*f*f))))
	}
}

// softmaxInPlace converts logits to probabilities with the max-shift
// trick for numerical stability. It returns the log-sum-exp so callers
// can recover log-probabilities.
func softmaxInPlace(x []float32) float64 {
	if len(x) == 0 {
		return 0
	}
	maxv := x[0]
	for _, v := range x[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i, v := range x {
		e := math.Exp(float64(v - maxv))
		x[i] = float32(e)
		sum += e
	}
	inv := 1 / sum
	for i := range x {
		x[i] = float32(float64(x[i]) * inv)
	}
	return math.Log(sum) + float64(maxv)
}
