package slm

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/tokenizer"
)

func TestSampledEstimatorUnbiased(t *testing.T) {
	ctx := context.Background()
	inner := Constant{ModelName: "const", P: 0.7}
	est, err := NewSampledEstimator(inner, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Average the estimate across many distinct requests.
	var sum float64
	const trials = 50
	for i := 0; i < trials; i++ {
		p, err := est.YesProbability(ctx, VerifyRequest{
			Question: "q", Context: "c",
			Claim: strings.Repeat("x", i+1),
		})
		if err != nil {
			t.Fatal(err)
		}
		sum += p
	}
	if mean := sum / trials; math.Abs(mean-0.7) > 0.03 {
		t.Errorf("sampled mean = %v, want ≈0.7", mean)
	}
}

func TestSampledEstimatorQuantized(t *testing.T) {
	ctx := context.Background()
	est, err := NewSampledEstimator(Constant{ModelName: "c", P: 0.43}, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	p, err := est.YesProbability(ctx, VerifyRequest{Question: "q", Context: "c", Claim: "claim"})
	if err != nil {
		t.Fatal(err)
	}
	// With 10 calls the estimate lies on the 0.1 grid (modulo endpoint
	// clamping).
	scaled := p * 10
	if math.Abs(scaled-math.Round(scaled)) > 1e-6 && p > 0.001 && p < 0.999 {
		t.Errorf("estimate %v not on the 10-call grid", p)
	}
}

func TestSampledEstimatorDeterministic(t *testing.T) {
	ctx := context.Background()
	mk := func() *SampledEstimator {
		est, err := NewSampledEstimator(NewQwen2(), 20, 99)
		if err != nil {
			t.Fatal(err)
		}
		return est
	}
	r := VerifyRequest{Question: "q", Context: "the store opens at 9 AM", Claim: "The store opens at 9 AM."}
	a, err := mk().YesProbability(ctx, r)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk().YesProbability(ctx, r)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("sampled estimates diverge: %v vs %v", a, b)
	}
}

func TestSampledEstimatorValidation(t *testing.T) {
	if _, err := NewSampledEstimator(nil, 5, 1); err == nil {
		t.Error("nil inner accepted")
	}
	if _, err := NewSampledEstimator(Constant{ModelName: "c", P: 0.5}, 0, 1); err == nil {
		t.Error("zero calls accepted")
	}
	est, _ := NewSampledEstimator(Constant{ModelName: "c", P: 0.5}, 5, 1)
	if !strings.Contains(est.Name(), "5-calls") {
		t.Errorf("Name = %q", est.Name())
	}
	if est.Calls() != 5 {
		t.Errorf("Calls = %d", est.Calls())
	}
}

func yesNoTokenizer(t *testing.T) *tokenizer.Tokenizer {
	t.Helper()
	tok := tokenizer.New()
	corpus := []string{
		"yes yes yes yes yes the answer is supported",
		"no no no no no the answer is not supported",
		"reply yes or no to the question",
	}
	if err := tok.Train(corpus, 150); err != nil {
		t.Fatal(err)
	}
	return tok
}

func TestYesNoProbability(t *testing.T) {
	tok := yesNoTokenizer(t)
	tr, err := NewTransformer(Config{Dim: 16, Heads: 2, Layers: 2, FFNDim: 32, MaxSeq: 64}, tok, 5)
	if err != nil {
		t.Fatal(err)
	}
	pYes, pNo, err := YesNoProbability(tr, "Is the answer supported by the context? Reply YES or NO:")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pYes+pNo-1) > 1e-9 {
		t.Errorf("masses not renormalized: %v + %v", pYes, pNo)
	}
	if pYes <= 0 || pYes >= 1 {
		t.Errorf("pYes = %v out of (0,1)", pYes)
	}
	// Deterministic.
	pYes2, _, _ := YesNoProbability(tr, "Is the answer supported by the context? Reply YES or NO:")
	if pYes != pYes2 {
		t.Error("YesNoProbability not deterministic")
	}
}

func TestTransformerVerifier(t *testing.T) {
	tok := yesNoTokenizer(t)
	tr, err := NewTransformer(Config{Dim: 16, Heads: 2, Layers: 2, FFNDim: 32, MaxSeq: 96}, tok, 5)
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewTransformerVerifier("raw-tiny", tr)
	if err != nil {
		t.Fatal(err)
	}
	if v.Name() != "raw-tiny" {
		t.Error("name")
	}
	p, err := v.YesProbability(context.Background(), VerifyRequest{
		Question: "q", Context: "c", Claim: "some claim",
	})
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 || p >= 1 {
		t.Errorf("p = %v", p)
	}
	if _, err := NewTransformerVerifier("", tr); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewTransformerVerifier("x", nil); err == nil {
		t.Error("nil transformer accepted")
	}
	if _, err := v.YesProbability(context.Background(), VerifyRequest{}); err == nil {
		t.Error("empty claim accepted")
	}
}
