package slm

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/rng"
	"repro/internal/tokenizer"
)

// SampledEstimator wraps a Model and estimates its yes-probability the
// way an API-only deployment must (paper §I: "One can call an LLM
// multiple times, similar to an API, to obtain probability estimates,
// but this requires more time"): draw n independent yes/no answers and
// return the yes fraction. The estimate is unbiased with standard
// error sqrt(p(1-p)/n) — the resolution loss that makes local logit
// access (Eq. 2) preferable when available.
type SampledEstimator struct {
	inner Model
	calls int
	seed  uint64
}

// NewSampledEstimator wraps inner with an n-call estimator. n must be
// positive; seed fixes the simulated sampling noise so experiments are
// reproducible.
func NewSampledEstimator(inner Model, n int, seed uint64) (*SampledEstimator, error) {
	if inner == nil {
		return nil, errors.New("slm: nil inner model")
	}
	if n <= 0 {
		return nil, fmt.Errorf("slm: call budget must be positive, got %d", n)
	}
	return &SampledEstimator{inner: inner, calls: n, seed: seed}, nil
}

// Name implements Model.
func (s *SampledEstimator) Name() string {
	return fmt.Sprintf("%s@%d-calls", s.inner.Name(), s.calls)
}

// Calls returns the per-request call budget.
func (s *SampledEstimator) Calls() int { return s.calls }

// YesProbability implements Model: the fraction of n simulated yes/no
// answers that came back "yes", where each answer is a Bernoulli draw
// with the inner model's true probability. Draws are deterministic in
// (seed, request) so repeated verification of the same claim agrees.
func (s *SampledEstimator) YesProbability(ctx context.Context, req VerifyRequest) (float64, error) {
	p, err := s.inner.YesProbability(ctx, req)
	if err != nil {
		return 0, err
	}
	src := rng.New(s.seed ^ rng.HashString(s.inner.Name()+"|"+VerificationPrompt(req)))
	yes := 0
	for i := 0; i < s.calls; i++ {
		if src.Float64() < p {
			yes++
		}
	}
	est := float64(yes) / float64(s.calls)
	// Clamp away from the exact endpoints so downstream ratio math
	// stays finite even when every sample agreed.
	return clampProb(est, 1e-4), nil
}

// YesNoProbability reads P(yes), P(no) off a transformer's first
// generated token for the standard verification prompt — the Eq. 2
// mechanism on the raw inference engine. The two masses are
// renormalized over the {yes, no} pair, the convention of Kadavath et
// al.'s P(True).
//
// The yes/no surface forms are resolved against the model's tokenizer:
// the leading-space variants (" yes", " no") are preferred because the
// prompt ends mid-line; byte-level fallbacks ("y"/"n" first bytes) are
// used when the vocabulary has no merged forms.
func YesNoProbability(t *Transformer, prompt string) (pYes, pNo float64, err error) {
	tok := t.Tokenizer()
	ids := tok.Encode(prompt)
	if len(ids) > t.Config().MaxSeq {
		ids = ids[len(ids)-t.Config().MaxSeq:]
	}
	probs, err := t.NextTokenProbs(ids)
	if err != nil {
		return 0, 0, err
	}
	yesIDs := candidateTokenIDs(tok, []string{" yes", " Yes", " YES", "yes", "Yes", "YES", "y", "Y"})
	noIDs := candidateTokenIDs(tok, []string{" no", " No", " NO", "no", "No", "NO", "n", "N"})
	if len(yesIDs) == 0 || len(noIDs) == 0 {
		return 0, 0, errors.New("slm: tokenizer has no yes/no surface forms")
	}
	var massYes, massNo float64
	for _, id := range yesIDs {
		massYes += float64(probs[id])
	}
	for _, id := range noIDs {
		massNo += float64(probs[id])
	}
	total := massYes + massNo
	if total == 0 {
		return 0.5, 0.5, nil
	}
	return massYes / total, massNo / total, nil
}

// candidateTokenIDs maps surface strings to existing token IDs,
// deduplicated, in preference order.
func candidateTokenIDs(tok *tokenizer.Tokenizer, surfaces []string) []int {
	seen := map[int]struct{}{}
	var out []int
	for _, s := range surfaces {
		if id, ok := tok.ID(s); ok {
			if _, dup := seen[id]; !dup {
				seen[id] = struct{}{}
				out = append(out, id)
			}
		}
	}
	return out
}

// TransformerVerifier exposes a raw Transformer as a Model via
// YesNoProbability. With untrained (seed-initialized) weights its
// judgments are arbitrary — it exists to prove the end-to-end
// inference path (prompt → tokens → logits → P(True)) and to host real
// weights if a checkpoint loader is added; the calibrated backends are
// the evaluation stand-ins.
type TransformerVerifier struct {
	name string
	net  *Transformer
}

// NewTransformerVerifier wraps net under the given model name.
func NewTransformerVerifier(name string, net *Transformer) (*TransformerVerifier, error) {
	if net == nil {
		return nil, errors.New("slm: nil transformer")
	}
	if name == "" {
		return nil, errors.New("slm: empty model name")
	}
	return &TransformerVerifier{name: name, net: net}, nil
}

// Name implements Model.
func (v *TransformerVerifier) Name() string { return v.name }

// YesProbability implements Model via the first-token yes/no masses.
func (v *TransformerVerifier) YesProbability(ctx context.Context, req VerifyRequest) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if err := req.Validate(); err != nil {
		return 0, err
	}
	pYes, _, err := YesNoProbability(v.net, VerificationPrompt(req))
	if err != nil {
		return 0, err
	}
	return clampProb(pYes, 1e-4), nil
}
