package slm

import (
	"context"
	"math"
	"sync"

	"repro/internal/rng"
	"repro/internal/textproc"
	"repro/internal/tokenizer"
)

// Profile parameterizes a synthetic instruction-tuned verifier. Each
// field models one empirical property of real judge models that the
// paper's checker must cope with:
//
//   - Sharpness/Bias: how decisive the model is and its yes-bias;
//   - NoiseAmp: input-correlated idiosyncrasy (two models disagree on
//     the same borderline claim in model-specific ways);
//   - WeightJitter: per-model perturbation of evidence-feature weights,
//     standing in for differences in training data;
//   - DilutionHalfLife: attention dilution — a wrong detail buried in a
//     long, mostly-correct claim is penalized less than the same detail
//     alone (the paper's motivation for the splitter, §IV-A);
//   - OutputScale/OutputShift: affine mis-calibration, giving each
//     model a different score mean and variance (why Eq. 4 z-normalizes
//     per model);
//   - Quantize: when positive, probabilities are rounded to this many
//     levels, modelling P(True) estimated by sampling an API model n
//     times instead of reading logits.
type Profile struct {
	Name             string
	Sharpness        float64
	Bias             float64
	NoiseAmp         float64
	WeightJitter     float64
	DilutionHalfLife float64
	OutputScale      float64
	OutputShift      float64
	Quantize         int
	// QuantityMissRate is the per-claim probability (deterministic in
	// the model/input pair) that the model overlooks numeric/temporal
	// contradiction evidence — the "attention failure" mode of real
	// judge models. MiniCPM-class models are weaker here.
	QuantityMissRate float64
	// PolarityMissRate is the same failure for negation/antonym
	// contradictions — Qwen2-class models are weaker here. Because the
	// two models' blind spots are complementary, their errors are
	// nearly independent, which is precisely what the paper's
	// multi-SLM ensemble (Eq. 5) exploits.
	PolarityMissRate float64
	// FalseAlarmRate is the symmetric failure: a supported claim read
	// as contradicted.
	FalseAlarmRate float64
	// SubtletyBlindness scales how much a near-miss numeric conflict
	// (high ConflictProximity) escapes the model. Unlike the typed
	// miss rates, this failure is input-driven and therefore
	// CORRELATED across models: a hallucination adjacent to the truth
	// fools the whole ensemble, which is what caps best precision
	// below 1 in the paper's Fig. 4.
	SubtletyBlindness float64
}

// Predefined profiles for the models the paper evaluates. The numbers
// are not measurements of the real checkpoints; they encode the
// qualitative contrasts the paper relies on (distinct scales, distinct
// error patterns, API quantization for ChatGPT).
var (
	// Qwen2Profile simulates Qwen2-1.5B-Instruct: decisive, slightly
	// yes-biased, scores spread over most of [0, 1].
	Qwen2Profile = Profile{
		Name: "qwen2-1.5b-instruct", Sharpness: 2.4, Bias: 0.30,
		NoiseAmp: 1.10, WeightJitter: 0.15, DilutionHalfLife: 7.5,
		OutputScale: 0.92, OutputShift: 0.04,
		QuantityMissRate: 0.06, PolarityMissRate: 0.18, FalseAlarmRate: 0.25,
		SubtletyBlindness: 0.82,
	}
	// MiniCPMProfile simulates MiniCPM-2B-sft: a little blunter, a
	// compressed output range with a higher floor — a clearly
	// different scale from Qwen2, which is what makes Eq. 4 matter.
	MiniCPMProfile = Profile{
		Name: "minicpm-2b-sft", Sharpness: 2.1, Bias: -0.15,
		NoiseAmp: 1.25, WeightJitter: 0.20, DilutionHalfLife: 7.0,
		OutputScale: 0.68, OutputShift: 0.22,
		QuantityMissRate: 0.18, PolarityMissRate: 0.06, FalseAlarmRate: 0.28,
		SubtletyBlindness: 0.85,
	}
	// ChatGPTProfile simulates the paper's ChatGPT baseline: a
	// higher-quality judge (lower noise, sharper) that can only be
	// used through an API, so P(True) comes from a handful of sampled
	// yes/no answers — hence heavy quantization.
	ChatGPTProfile = Profile{
		Name: "chatgpt-3.5-p(true)", Sharpness: 3.0, Bias: 0.10,
		NoiseAmp: 0.80, WeightJitter: 0.08, DilutionHalfLife: 8.0,
		OutputScale: 1.0, OutputShift: 0.0, Quantize: 10,
		QuantityMissRate: 0.10, PolarityMissRate: 0.10, FalseAlarmRate: 0.08,
		SubtletyBlindness: 0.75,
	}
)

// featureWeights are the per-model evidence weights, jittered from the
// shared base so each model "was trained differently".
type featureWeights struct {
	uni, bi, conflict, match, antonym, negation, hedge, short float64
}

var baseWeights = featureWeights{
	uni: 1.05, bi: 0.85, conflict: 2.2, match: 0.30,
	antonym: 1.25, negation: 0.95, hedge: 0.10, short: 0.15,
}

// CalibratedVerifier is a Model whose yes-probability is a calibrated,
// noisy function of grounded evidence features. It is deterministic:
// probability = f(profile, question, context, claim) with no hidden
// global state. Safe for concurrent use.
type CalibratedVerifier struct {
	profile Profile
	weights featureWeights
	net     *Transformer // per-model idiosyncrasy network
	tok     *tokenizer.Tokenizer

	mu    sync.Mutex
	cache map[string]float64 // prompt → hidden signature
}

// idiosyncrasyConfig is the tiny network used only to derive a
// deterministic, model-specific signature of each input. Small on
// purpose: it runs once per (model, sentence) pair.
var idiosyncrasyConfig = Config{
	Dim: 32, Heads: 4, Layers: 2, FFNDim: 64, MaxSeq: 96,
}

// NewCalibrated builds a verifier from a profile. The model's
// idiosyncrasy network and feature weights are seeded from the profile
// name, so equal names mean identical behaviour.
func NewCalibrated(p Profile) (*CalibratedVerifier, error) {
	tok := tokenizer.New() // byte-level fallback: any prompt encodes
	net, err := NewTransformer(idiosyncrasyConfig, tok, rng.HashString("slm-net:"+p.Name))
	if err != nil {
		return nil, err
	}
	src := rng.NewFromString("slm-weights:" + p.Name)
	jit := func(w float64) float64 { return w * (1 + p.WeightJitter*src.NormFloat64()) }
	return &CalibratedVerifier{
		profile: p,
		weights: featureWeights{
			uni:      jit(baseWeights.uni),
			bi:       jit(baseWeights.bi),
			conflict: jit(baseWeights.conflict),
			match:    jit(baseWeights.match),
			antonym:  jit(baseWeights.antonym),
			negation: jit(baseWeights.negation),
			hedge:    jit(baseWeights.hedge),
			short:    jit(baseWeights.short),
		},
		net:   net,
		tok:   tok,
		cache: map[string]float64{},
	}, nil
}

// MustCalibrated is NewCalibrated that panics on error; the predefined
// profiles are statically valid, so constructors for them use this.
func MustCalibrated(p Profile) *CalibratedVerifier {
	v, err := NewCalibrated(p)
	if err != nil {
		panic(err)
	}
	return v
}

// NewQwen2 returns the synthetic stand-in for Qwen2-1.5B-Instruct.
func NewQwen2() *CalibratedVerifier { return MustCalibrated(Qwen2Profile) }

// NewMiniCPM returns the synthetic stand-in for MiniCPM-2B-sft.
func NewMiniCPM() *CalibratedVerifier { return MustCalibrated(MiniCPMProfile) }

// NewChatGPTStyle returns the synthetic stand-in for the paper's
// ChatGPT P(True) baseline: good judgments, quantized probabilities.
func NewChatGPTStyle() *CalibratedVerifier { return MustCalibrated(ChatGPTProfile) }

// Name implements Model.
func (v *CalibratedVerifier) Name() string { return v.profile.Name }

// Profile returns the verifier's (immutable) profile.
func (v *CalibratedVerifier) Profile() Profile { return v.profile }

// YesProbability implements Model: the probability that the first
// generated token is "yes" for the Fig. 1 verification prompt.
func (v *CalibratedVerifier) YesProbability(ctx context.Context, req VerifyRequest) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if err := req.Validate(); err != nil {
		return 0, err
	}
	f := textproc.ExtractFeatures(req.Claim, req.Context)
	prompt := VerificationPrompt(req)
	// Hard-error draws are deterministic in (model, prompt): the same
	// model always misreads the same claim the same way, like a real
	// checkpoint, while different models fail on different claims.
	u := rng.NewFromString("slm-misread:" + v.profile.Name + "|" + prompt)
	missQuantity := u.Float64() < v.profile.QuantityMissRate
	missPolarity := u.Float64() < v.profile.PolarityMissRate
	falseAlarm := u.Float64() < v.profile.FalseAlarmRate
	// Catch strength varies per (model, claim): a model that notices a
	// contradiction is not always equally sure of it. The spread makes
	// single worst-sentence statistics (Eq. 9's min) noisy while
	// averaging aggregators stay stable.
	catchStrength := 0.6 + 0.9*u.Float64()
	ev := v.evidenceScore(f, missQuantity, missPolarity, falseAlarm, catchStrength)
	idio, err := v.signature(prompt)
	if err != nil {
		return 0, err
	}
	logit := v.profile.Sharpness*ev + v.profile.Bias + v.profile.NoiseAmp*idio
	p := sigmoid(logit)
	p = v.profile.OutputShift + v.profile.OutputScale*p
	p = clampProb(p, 1e-4)
	if q := v.profile.Quantize; q > 0 {
		p = math.Round(p*float64(q)) / float64(q)
		p = clampProb(p, 1e-4)
	}
	return p, nil
}

// evidenceScore folds the feature vector into a centered score,
// positive for supported claims, negative for contradicted ones.
// Contradiction penalties decay exponentially with claim length: a
// model reading a long, mostly-correct passage under-weights the one
// wrong detail buried in it (exactly why the paper splits responses
// into sentences first). missQuantity/missPolarity drop the
// corresponding contradiction evidence entirely; falseAlarm injects a
// phantom contradiction.
func (v *CalibratedVerifier) evidenceScore(f textproc.Features, missQuantity, missPolarity, falseAlarm bool, catchStrength float64) float64 {
	w := v.weights
	support := w.uni*f.UnigramSupport + w.bi*f.BigramSupport
	support /= w.uni + w.bi // normalize to [0, 1]

	dil := math.Exp(-float64(f.ClaimLength) / v.profile.DilutionHalfLife)
	var penaltyUnits float64
	matches := float64(f.QuantityMatches)
	if !missQuantity {
		// Near-miss conflicts slip past the model in proportion to
		// their proximity to the truth — and a model that glosses over
		// "day 26" vs "day 25" doesn't merely skip the conflict, it
		// reads the claimed value as corroborated.
		blindness := v.profile.SubtletyBlindness * f.ConflictProximity
		penaltyUnits += w.conflict * float64(f.QuantityConflicts) * (1 - blindness)
		// A glossed-over near-miss reads as corroboration...
		matches += float64(f.QuantityConflicts) * blindness
	}
	// ...whereas a typed attention miss simply drops the evidence:
	// the model neither penalizes nor credits the unnoticed value.
	if !missPolarity {
		penaltyUnits += w.antonym * float64(f.AntonymClashes)
		if f.NegationMismatch {
			penaltyUnits += w.negation
		}
	}
	penaltyUnits *= catchStrength
	if falseAlarm {
		// A phantom contradiction is weaker than a real one (and is
		// not amplified by catch strength): the claim still enjoys
		// full lexical support and corroborated facts, so a second,
		// clean model can outvote the mistake — the ensemble benefit
		// the paper measures.
		penaltyUnits += 0.3 * w.conflict
	}
	bonus := dil * w.match * matches
	score := (support - 0.5) + bonus - dil*penaltyUnits - w.hedge*float64(f.Hedges)
	if f.ClaimLength <= 2 {
		score -= w.short
	}
	// Long claims wash out the model's overall judgment, not just the
	// contradiction term: the noise floor stays constant while the
	// usable signal shrinks. γ controls how much of the score decays
	// with the dilution factor.
	const gamma = 0.5
	score *= (1 - gamma) + gamma*dil
	return score
}

// signature returns the cached hidden-state signature of the prompt
// under this model's private network.
func (v *CalibratedVerifier) signature(prompt string) (float64, error) {
	v.mu.Lock()
	if s, ok := v.cache[prompt]; ok {
		v.mu.Unlock()
		return s, nil
	}
	v.mu.Unlock()
	ids := v.tok.Encode(prompt)
	if len(ids) == 0 {
		ids = []int{tokenizer.BosID}
	}
	s, err := v.net.HiddenSignature(ids)
	if err != nil {
		return 0, err
	}
	v.mu.Lock()
	// Cheap bound on the memoization table; verification workloads
	// revisit the same sentences across threshold sweeps, so hit rates
	// are high, but an adversarial stream must not grow it unbounded.
	if len(v.cache) > 1<<16 {
		v.cache = map[string]float64{}
	}
	v.cache[prompt] = s
	v.mu.Unlock()
	return s, nil
}

// Oracle is a Model that returns the grounded support score directly,
// with no noise or miscalibration. It is the "perfect verifier" upper
// bound used in tests and ablations; the framework never needs it.
type Oracle struct{}

// Name implements Model.
func (Oracle) Name() string { return "oracle" }

// YesProbability implements Model with the noise-free support score.
func (Oracle) YesProbability(ctx context.Context, req VerifyRequest) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if err := req.Validate(); err != nil {
		return 0, err
	}
	return textproc.ExtractFeatures(req.Claim, req.Context).SupportScore(), nil
}

// Constant is a Model that always answers with a fixed probability —
// degenerate on purpose, for exercising the checker's edge cases
// (σ = 0 streams, all-equal scores).
type Constant struct {
	// ModelName is returned by Name.
	ModelName string
	// P is the fixed probability returned for every request.
	P float64
}

// Name implements Model.
func (c Constant) Name() string { return c.ModelName }

// YesProbability implements Model, returning the fixed probability.
func (c Constant) YesProbability(ctx context.Context, req VerifyRequest) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if err := req.Validate(); err != nil {
		return 0, err
	}
	return c.P, nil
}
