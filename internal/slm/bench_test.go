package slm

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/tokenizer"
)

func BenchmarkTransformerStep(b *testing.B) {
	tr, err := NewTransformer(idiosyncrasyConfig, tokenizer.New(), 1)
	if err != nil {
		b.Fatal(err)
	}
	prompt := tr.Tokenizer().Encode("Is the answer supported by the context? Reply YES or NO:")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := tr.NewSession()
		if _, err := s.Feed(prompt); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(prompt)), "tokens/op")
}

func BenchmarkYesProbabilityColdCache(b *testing.B) {
	ctx := context.Background()
	r := VerifyRequest{
		Question: "What are the working hours?",
		Context:  "The store operates from 9 AM to 5 PM, from Sunday to Saturday.",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewQwen2() // fresh cache each iteration
		r.Claim = fmt.Sprintf("The working hours are 9 AM to 5 PM, run %d.", i)
		if _, err := m.YesProbability(ctx, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkYesProbabilityWarmCache(b *testing.B) {
	ctx := context.Background()
	m := NewQwen2()
	r := VerifyRequest{
		Question: "What are the working hours?",
		Context:  "The store operates from 9 AM to 5 PM, from Sunday to Saturday.",
		Claim:    "The working hours are 9 AM to 5 PM.",
	}
	if _, err := m.YesProbability(ctx, r); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.YesProbability(ctx, r); err != nil {
			b.Fatal(err)
		}
	}
}
