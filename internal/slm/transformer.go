package slm

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/tokenizer"
)

// Config describes a decoder-only transformer. Sizes are deliberately
// small — the engine exists to make the inference code path real
// (tokenize → embed → attend → project → softmax → first-token
// probability), not to host billion-parameter weights.
type Config struct {
	// VocabSize is the tokenizer vocabulary size; logits have this
	// width.
	VocabSize int
	// Dim is the residual-stream width.
	Dim int
	// Heads is the number of attention heads; Dim must be divisible by
	// Heads.
	Heads int
	// Layers is the number of transformer blocks.
	Layers int
	// FFNDim is the hidden width of the feed-forward block, typically
	// 4×Dim.
	FFNDim int
	// MaxSeq is the maximum sequence length (positional table size and
	// KV-cache capacity).
	MaxSeq int
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	switch {
	case c.VocabSize <= 0:
		return fmt.Errorf("slm: VocabSize must be positive, got %d", c.VocabSize)
	case c.Dim <= 0 || c.Heads <= 0 || c.Layers <= 0 || c.FFNDim <= 0 || c.MaxSeq <= 0:
		return errors.New("slm: all dimensions must be positive")
	case c.Dim%c.Heads != 0:
		return fmt.Errorf("slm: Dim %d not divisible by Heads %d", c.Dim, c.Heads)
	}
	return nil
}

// NumParams returns the total parameter count of a model with this
// configuration.
func (c Config) NumParams() int {
	perLayer := 4*c.Dim*c.Dim + // q,k,v,o projections
		2*c.Dim*c.FFNDim + c.FFNDim + c.Dim + // ffn weights + biases
		4*c.Dim // two layernorms (gain+bias)
	return c.VocabSize*c.Dim + // token embedding (tied output head)
		c.MaxSeq*c.Dim + // positional embedding
		c.Layers*perLayer +
		2*c.Dim // final layernorm
}

// layerWeights holds one transformer block's parameters.
type layerWeights struct {
	wq, wk, wv, wo []float32 // Dim×Dim each
	ln1g, ln1b     []float32 // Dim
	ln2g, ln2b     []float32 // Dim
	w1             []float32 // FFNDim×Dim
	b1             []float32 // FFNDim
	w2             []float32 // Dim×FFNDim
	b2             []float32 // Dim
}

// Transformer is a decoder-only transformer with learned positional
// embeddings, pre-layernorm blocks and a weight-tied output head.
// Weights are immutable after construction, so a Transformer may be
// shared across goroutines; per-call state lives in Session.
type Transformer struct {
	cfg Config
	tok *tokenizer.Tokenizer

	tokEmb []float32 // VocabSize×Dim
	posEmb []float32 // MaxSeq×Dim
	layers []layerWeights
	lnFg   []float32 // final layernorm gain
	lnFb   []float32 // final layernorm bias
}

// NewTransformer builds a transformer with weights drawn from a
// deterministic source seeded by `seed`, scaled with the standard
// 1/sqrt(fanIn) initialization. The tokenizer fixes VocabSize.
func NewTransformer(cfg Config, tok *tokenizer.Tokenizer, seed uint64) (*Transformer, error) {
	cfg.VocabSize = tok.VocabSize()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	src := rng.New(seed)
	randn := func(n int, scale float64) []float32 {
		out := make([]float32, n)
		for i := range out {
			out[i] = float32(src.NormFloat64() * scale)
		}
		return out
	}
	ones := func(n int) []float32 {
		out := make([]float32, n)
		for i := range out {
			out[i] = 1
		}
		return out
	}
	t := &Transformer{
		cfg:    cfg,
		tok:    tok,
		tokEmb: randn(cfg.VocabSize*cfg.Dim, 0.02),
		posEmb: randn(cfg.MaxSeq*cfg.Dim, 0.02),
		lnFg:   ones(cfg.Dim),
		lnFb:   make([]float32, cfg.Dim),
	}
	attnScale := 1 / math.Sqrt(float64(cfg.Dim))
	ffnScale := 1 / math.Sqrt(float64(cfg.FFNDim))
	for l := 0; l < cfg.Layers; l++ {
		t.layers = append(t.layers, layerWeights{
			wq:   randn(cfg.Dim*cfg.Dim, attnScale),
			wk:   randn(cfg.Dim*cfg.Dim, attnScale),
			wv:   randn(cfg.Dim*cfg.Dim, attnScale),
			wo:   randn(cfg.Dim*cfg.Dim, attnScale),
			ln1g: ones(cfg.Dim), ln1b: make([]float32, cfg.Dim),
			ln2g: ones(cfg.Dim), ln2b: make([]float32, cfg.Dim),
			w1: randn(cfg.FFNDim*cfg.Dim, attnScale),
			b1: make([]float32, cfg.FFNDim),
			w2: randn(cfg.Dim*cfg.FFNDim, ffnScale),
			b2: make([]float32, cfg.Dim),
		})
	}
	return t, nil
}

// Config returns the model's configuration.
func (t *Transformer) Config() Config { return t.cfg }

// Tokenizer returns the tokenizer the model was built with.
func (t *Transformer) Tokenizer() *tokenizer.Tokenizer { return t.tok }

// Session holds the per-sequence KV cache for incremental decoding.
// A Session is single-goroutine; create one per concurrent decode.
type Session struct {
	t *Transformer
	// kCache/vCache are [layer][pos*Dim] grown as tokens arrive.
	kCache [][]float32
	vCache [][]float32
	pos    int
	// scratch buffers reused across steps.
	x, xn, q, k, v, attnOut, ffnHid, ffnOut []float32
	logits                                  []float32
}

// NewSession creates an empty decoding session.
func (t *Transformer) NewSession() *Session {
	return &Session{
		t:       t,
		kCache:  make([][]float32, t.cfg.Layers),
		vCache:  make([][]float32, t.cfg.Layers),
		x:       make([]float32, t.cfg.Dim),
		xn:      make([]float32, t.cfg.Dim),
		q:       make([]float32, t.cfg.Dim),
		k:       make([]float32, t.cfg.Dim),
		v:       make([]float32, t.cfg.Dim),
		attnOut: make([]float32, t.cfg.Dim),
		ffnHid:  make([]float32, t.cfg.FFNDim),
		ffnOut:  make([]float32, t.cfg.Dim),
		logits:  make([]float32, t.cfg.VocabSize),
	}
}

// Len returns the number of tokens consumed so far.
func (s *Session) Len() int { return s.pos }

// ErrSequenceTooLong is returned when feeding beyond MaxSeq.
var ErrSequenceTooLong = errors.New("slm: sequence exceeds MaxSeq")

// Step feeds one token ID and returns the logits for the next token.
// The returned slice aliases session scratch space and is valid until
// the next Step.
func (s *Session) Step(id int) ([]float32, error) {
	t := s.t
	cfg := t.cfg
	if s.pos >= cfg.MaxSeq {
		return nil, fmt.Errorf("%w (max %d)", ErrSequenceTooLong, cfg.MaxSeq)
	}
	if id < 0 || id >= cfg.VocabSize {
		return nil, fmt.Errorf("slm: token id %d out of vocab range %d", id, cfg.VocabSize)
	}
	d := cfg.Dim
	// Embedding = token + position.
	copy(s.x, t.tokEmb[id*d:(id+1)*d])
	addInPlace(s.x, t.posEmb[s.pos*d:(s.pos+1)*d])

	headDim := d / cfg.Heads
	scale := float32(1 / math.Sqrt(float64(headDim)))
	for l := range t.layers {
		lw := &t.layers[l]
		// --- attention sublayer (pre-LN) ---
		copy(s.xn, s.x)
		layerNorm(s.xn, lw.ln1g, lw.ln1b, 1e-5)
		matVec(s.q, lw.wq, s.xn, d, d)
		matVec(s.k, lw.wk, s.xn, d, d)
		matVec(s.v, lw.wv, s.xn, d, d)
		s.kCache[l] = append(s.kCache[l], s.k...)
		s.vCache[l] = append(s.vCache[l], s.v...)
		steps := s.pos + 1
		// Causal attention: the new query attends to all cached keys.
		for h := 0; h < cfg.Heads; h++ {
			qh := s.q[h*headDim : (h+1)*headDim]
			// softmax over `steps` scores.
			scores := make([]float32, steps)
			for p := 0; p < steps; p++ {
				kh := s.kCache[l][p*d+h*headDim : p*d+(h+1)*headDim]
				scores[p] = dot(qh, kh) * scale
			}
			softmaxInPlace(scores)
			out := s.attnOut[h*headDim : (h+1)*headDim]
			for i := range out {
				out[i] = 0
			}
			for p := 0; p < steps; p++ {
				vh := s.vCache[l][p*d+h*headDim : p*d+(h+1)*headDim]
				w := scores[p]
				for i := range out {
					out[i] += w * vh[i]
				}
			}
		}
		matVec(s.xn, lw.wo, s.attnOut, d, d)
		addInPlace(s.x, s.xn)
		// --- FFN sublayer (pre-LN) ---
		copy(s.xn, s.x)
		layerNorm(s.xn, lw.ln2g, lw.ln2b, 1e-5)
		matVec(s.ffnHid, lw.w1, s.xn, cfg.FFNDim, d)
		addInPlace(s.ffnHid, lw.b1)
		gelu(s.ffnHid)
		matVec(s.ffnOut, lw.w2, s.ffnHid, d, cfg.FFNDim)
		addInPlace(s.ffnOut, lw.b2)
		addInPlace(s.x, s.ffnOut)
	}
	s.pos++
	// Final norm + tied output head.
	copy(s.xn, s.x)
	layerNorm(s.xn, t.lnFg, t.lnFb, 1e-5)
	matVec(s.logits, t.tokEmb, s.xn, cfg.VocabSize, d)
	return s.logits, nil
}

// Feed consumes a sequence of token IDs, returning the logits after the
// final token.
func (s *Session) Feed(ids []int) ([]float32, error) {
	var logits []float32
	var err error
	for _, id := range ids {
		logits, err = s.Step(id)
		if err != nil {
			return nil, err
		}
	}
	return logits, nil
}

// NextTokenProbs runs the prompt through the model and returns the
// softmax distribution over the first generated token — exactly the
// quantity the paper's Eq. 2 reads the "yes" mass from. The returned
// slice is freshly allocated.
func (t *Transformer) NextTokenProbs(promptIDs []int) ([]float32, error) {
	if len(promptIDs) == 0 {
		return nil, errors.New("slm: empty prompt")
	}
	s := t.NewSession()
	logits, err := s.Feed(promptIDs)
	if err != nil {
		return nil, err
	}
	probs := make([]float32, len(logits))
	copy(probs, logits)
	softmaxInPlace(probs)
	return probs, nil
}

// Generate samples up to maxTokens continuation tokens for the prompt
// using temperature sampling (temperature ≤ 0 means greedy argmax).
// Generation stops early at EOS. The source provides randomness so
// callers control determinism.
func (t *Transformer) Generate(promptIDs []int, maxTokens int, temperature float64, src *rng.Source) ([]int, error) {
	s := t.NewSession()
	logits, err := s.Feed(promptIDs)
	if err != nil {
		return nil, err
	}
	var out []int
	for n := 0; n < maxTokens; n++ {
		id := sampleLogits(logits, temperature, src)
		if id == tokenizer.EosID {
			break
		}
		out = append(out, id)
		logits, err = s.Step(id)
		if err != nil {
			if errors.Is(err, ErrSequenceTooLong) {
				break
			}
			return nil, err
		}
	}
	return out, nil
}

// sampleLogits draws a token from the logit vector. Greedy when
// temperature ≤ 0 or src is nil.
func sampleLogits(logits []float32, temperature float64, src *rng.Source) int {
	if temperature <= 0 || src == nil {
		best, bestV := 0, logits[0]
		for i, v := range logits[1:] {
			if v > bestV {
				best, bestV = i+1, v
			}
		}
		return best
	}
	probs := make([]float32, len(logits))
	for i, v := range logits {
		probs[i] = float32(float64(v) / temperature)
	}
	softmaxInPlace(probs)
	r := src.Float64()
	var cum float64
	for i, p := range probs {
		cum += float64(p)
		if r < cum {
			return i
		}
	}
	return len(probs) - 1
}

// HiddenSignature runs the prompt through the network and folds the
// final residual stream into a single value in [-1, 1]. Because the
// weights are seeded per model, two different models map the same
// prompt to different, deterministic signatures — the engine's way of
// giving each synthetic SLM input-correlated idiosyncrasies (see
// CalibratedVerifier).
func (t *Transformer) HiddenSignature(promptIDs []int) (float64, error) {
	if len(promptIDs) == 0 {
		return 0, errors.New("slm: empty prompt")
	}
	// Cap the prompt at MaxSeq by keeping the tail: the claim (the
	// discriminating part) sits at the end of verification prompts.
	if len(promptIDs) > t.cfg.MaxSeq {
		promptIDs = promptIDs[len(promptIDs)-t.cfg.MaxSeq:]
	}
	s := t.NewSession()
	if _, err := s.Feed(promptIDs); err != nil {
		return 0, err
	}
	var acc float64
	for i, v := range s.x {
		if i%2 == 0 {
			acc += float64(v)
		} else {
			acc -= float64(v)
		}
	}
	return math.Tanh(acc / math.Sqrt(float64(t.cfg.Dim))), nil
}
