package slm

import (
	"errors"
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/tokenizer"
)

func testConfig() Config {
	return Config{Dim: 16, Heads: 2, Layers: 2, FFNDim: 32, MaxSeq: 32}
}

func newTestTransformer(t *testing.T) *Transformer {
	t.Helper()
	tr, err := NewTransformer(testConfig(), tokenizer.New(), 1234)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Dim: 0, Heads: 1, Layers: 1, FFNDim: 1, MaxSeq: 1, VocabSize: 10},
		{Dim: 10, Heads: 3, Layers: 1, FFNDim: 1, MaxSeq: 1, VocabSize: 10}, // 10 % 3 != 0
		{Dim: 4, Heads: 2, Layers: 0, FFNDim: 8, MaxSeq: 4, VocabSize: 10},
		{Dim: 4, Heads: 2, Layers: 1, FFNDim: 8, MaxSeq: 4, VocabSize: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
	good := Config{Dim: 4, Heads: 2, Layers: 1, FFNDim: 8, MaxSeq: 4, VocabSize: 10}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestNumParamsPositive(t *testing.T) {
	c := testConfig()
	c.VocabSize = 260
	if n := c.NumParams(); n <= 0 {
		t.Errorf("NumParams = %d", n)
	}
}

func TestNextTokenProbsIsDistribution(t *testing.T) {
	tr := newTestTransformer(t)
	ids := tr.Tokenizer().Encode("the store opens at nine")
	probs, err := tr.NextTokenProbs(ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != tr.Config().VocabSize {
		t.Fatalf("probs len %d != vocab %d", len(probs), tr.Config().VocabSize)
	}
	var sum float64
	for _, p := range probs {
		if p < 0 || p > 1 {
			t.Fatalf("probability %v out of range", p)
		}
		sum += float64(p)
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Errorf("probabilities sum to %v", sum)
	}
}

func TestNextTokenProbsEmptyPrompt(t *testing.T) {
	tr := newTestTransformer(t)
	if _, err := tr.NextTokenProbs(nil); err == nil {
		t.Error("empty prompt accepted")
	}
}

func TestDeterminism(t *testing.T) {
	a := newTestTransformer(t)
	b, err := NewTransformer(testConfig(), tokenizer.New(), 1234)
	if err != nil {
		t.Fatal(err)
	}
	ids := a.Tokenizer().Encode("determinism check")
	pa, _ := a.NextTokenProbs(ids)
	pb, _ := b.NextTokenProbs(ids)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("same seed diverged at logit %d", i)
		}
	}
	c, err := NewTransformer(testConfig(), tokenizer.New(), 99)
	if err != nil {
		t.Fatal(err)
	}
	pc, _ := c.NextTokenProbs(ids)
	same := true
	for i := range pa {
		if pa[i] != pc[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical distributions")
	}
}

func TestIncrementalMatchesBatch(t *testing.T) {
	// The KV cache must make step-by-step decoding equal to feeding
	// the whole prefix at once.
	tr := newTestTransformer(t)
	ids := tr.Tokenizer().Encode("abc def ghi")
	if len(ids) < 3 {
		t.Fatal("prompt too short for the test")
	}
	s1 := tr.NewSession()
	logitsAll, err := s1.Feed(ids)
	if err != nil {
		t.Fatal(err)
	}
	s2 := tr.NewSession()
	var logitsStep []float32
	for _, id := range ids {
		logitsStep, err = s2.Step(id)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := range logitsAll {
		if math.Abs(float64(logitsAll[i]-logitsStep[i])) > 1e-5 {
			t.Fatalf("incremental diverged at %d: %v vs %v", i, logitsAll[i], logitsStep[i])
		}
	}
}

func TestSequenceTooLong(t *testing.T) {
	tr := newTestTransformer(t)
	s := tr.NewSession()
	for i := 0; i < tr.Config().MaxSeq; i++ {
		if _, err := s.Step(tokenizer.BosID); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Step(tokenizer.BosID); !errors.Is(err, ErrSequenceTooLong) {
		t.Errorf("overlong step err = %v, want ErrSequenceTooLong", err)
	}
}

func TestStepRejectsBadToken(t *testing.T) {
	tr := newTestTransformer(t)
	s := tr.NewSession()
	if _, err := s.Step(-1); err == nil {
		t.Error("negative token accepted")
	}
	if _, err := s.Step(tr.Config().VocabSize); err == nil {
		t.Error("out-of-vocab token accepted")
	}
}

func TestGenerateGreedyDeterministic(t *testing.T) {
	tr := newTestTransformer(t)
	ids := tr.Tokenizer().Encode("hello")
	a, err := tr.Generate(ids, 8, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.Generate(ids, 8, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("greedy generation nondeterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("greedy generation nondeterministic")
		}
	}
	if len(a) == 0 {
		t.Skip("greedy hit EOS immediately; acceptable for random weights")
	}
}

func TestGenerateSampledWithinVocab(t *testing.T) {
	tr := newTestTransformer(t)
	ids := tr.Tokenizer().Encode("sample")
	out, err := tr.Generate(ids, 10, 1.0, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range out {
		if id < 0 || id >= tr.Config().VocabSize {
			t.Fatalf("generated id %d out of vocab", id)
		}
	}
	// Generation respects MaxSeq even for long budgets.
	if _, err := tr.Generate(ids, 10_000, 1.0, rng.New(7)); err != nil {
		t.Fatalf("long generation should stop at MaxSeq, got %v", err)
	}
}

func TestHiddenSignatureProperties(t *testing.T) {
	tr := newTestTransformer(t)
	enc := func(s string) []int { return tr.Tokenizer().Encode(s) }
	a, err := tr.HiddenSignature(enc("the quick brown fox"))
	if err != nil {
		t.Fatal(err)
	}
	if a < -1 || a > 1 {
		t.Errorf("signature %v out of [-1,1]", a)
	}
	b, _ := tr.HiddenSignature(enc("the quick brown fox"))
	if a != b {
		t.Error("signature not deterministic")
	}
	c, _ := tr.HiddenSignature(enc("a completely different sentence here"))
	if a == c {
		t.Error("distinct inputs produced identical signatures")
	}
	// Longer than MaxSeq: tail is kept, no error.
	long := enc("word word word word word word word word word word word word word word word word word word word word")
	if _, err := tr.HiddenSignature(long); err != nil {
		t.Errorf("long prompt signature failed: %v", err)
	}
	if _, err := tr.HiddenSignature(nil); err == nil {
		t.Error("empty prompt accepted")
	}
}

func TestSoftmaxInPlace(t *testing.T) {
	x := []float32{1, 2, 3}
	softmaxInPlace(x)
	var sum float64
	for _, v := range x {
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("softmax sums to %v", sum)
	}
	if !(x[2] > x[1] && x[1] > x[0]) {
		t.Error("softmax broke ordering")
	}
	// Large values must not overflow.
	y := []float32{1000, 1000}
	softmaxInPlace(y)
	if math.IsNaN(float64(y[0])) || math.Abs(float64(y[0])-0.5) > 1e-6 {
		t.Errorf("softmax unstable for large logits: %v", y)
	}
}

func TestLayerNorm(t *testing.T) {
	x := []float32{1, 2, 3, 4}
	gain := []float32{1, 1, 1, 1}
	bias := []float32{0, 0, 0, 0}
	layerNorm(x, gain, bias, 1e-5)
	var mean, varsum float64
	for _, v := range x {
		mean += float64(v)
	}
	mean /= 4
	for _, v := range x {
		varsum += (float64(v) - mean) * (float64(v) - mean)
	}
	if math.Abs(mean) > 1e-5 {
		t.Errorf("normalized mean = %v", mean)
	}
	if math.Abs(varsum/4-1) > 1e-3 {
		t.Errorf("normalized variance = %v", varsum/4)
	}
}

func TestMatVecShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch did not panic")
		}
	}()
	matVec(make([]float32, 2), make([]float32, 4), make([]float32, 3), 2, 2)
}
