package slm

import (
	"context"
	"strings"
	"sync"
	"testing"
)

var hoursContext = "The store operates from 9 AM to 5 PM, from Sunday to Saturday. " +
	"There should be at least three shopkeepers to run a shop."

func req(claim string) VerifyRequest {
	return VerifyRequest{
		Question: "What are the working hours?",
		Context:  hoursContext,
		Claim:    claim,
	}
}

func TestVerifyRequestValidate(t *testing.T) {
	if err := (VerifyRequest{Claim: "x"}).Validate(); err != nil {
		t.Errorf("valid request rejected: %v", err)
	}
	if err := (VerifyRequest{Claim: "  "}).Validate(); err == nil {
		t.Error("blank claim accepted")
	}
}

func TestVerificationPromptShape(t *testing.T) {
	p := VerificationPrompt(req("The hours are 9 AM to 5 PM."))
	for _, want := range []string{"Question:", "Context:", "Answer:", "YES", "NO"} {
		if !strings.Contains(p, want) {
			t.Errorf("prompt missing %q:\n%s", want, p)
		}
	}
}

func TestCalibratedProbabilityRange(t *testing.T) {
	ctx := context.Background()
	for _, m := range []Model{NewQwen2(), NewMiniCPM(), NewChatGPTStyle()} {
		for _, claim := range []string{
			"The working hours are 9 AM to 5 PM.",
			"The working hours are 9 AM to 9 PM.",
			"Chocolate is a key ingredient.",
		} {
			p, err := m.YesProbability(ctx, req(claim))
			if err != nil {
				t.Fatalf("%s: %v", m.Name(), err)
			}
			if p <= 0 || p >= 1 {
				t.Errorf("%s: probability %v not strictly inside (0,1)", m.Name(), p)
			}
		}
	}
}

func TestCalibratedDeterminism(t *testing.T) {
	ctx := context.Background()
	a, b := NewQwen2(), NewQwen2()
	r := req("The working hours are 9 AM to 5 PM.")
	pa, err := a.YesProbability(ctx, r)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.YesProbability(ctx, r)
	if err != nil {
		t.Fatal(err)
	}
	if pa != pb {
		t.Errorf("two instances of the same model disagree: %v vs %v", pa, pb)
	}
	// Repeated calls (cache path) agree too.
	pa2, _ := a.YesProbability(ctx, r)
	if pa != pa2 {
		t.Error("cached call diverged")
	}
}

func TestModelsDisagree(t *testing.T) {
	// Different models must produce different scores on the same
	// input — otherwise Eq. 5's ensemble would be pointless.
	ctx := context.Background()
	r := req("The working hours are 9 AM to 5 PM.")
	pq, _ := NewQwen2().YesProbability(ctx, r)
	pm, _ := NewMiniCPM().YesProbability(ctx, r)
	if pq == pm {
		t.Errorf("Qwen2 and MiniCPM agree exactly (%v); profiles not differentiated", pq)
	}
}

func TestSupportedScoresAboveContradicted(t *testing.T) {
	// Averaged over many items the supported claims must score
	// higher; individual inversions are allowed (that's the noise the
	// ensemble exists for).
	ctx := context.Background()
	m := NewQwen2()
	supported := []string{
		"The working hours are 9 AM to 5 PM.",
		"The store is open from Sunday to Saturday.",
		"At least three shopkeepers are needed to run a shop.",
	}
	contradicted := []string{
		"The working hours are 9 AM to 9 PM.",
		"The store is open from Monday to Friday.",
		"You do not need to work on weekends.",
	}
	var sumS, sumC float64
	for _, c := range supported {
		p, err := m.YesProbability(ctx, req(c))
		if err != nil {
			t.Fatal(err)
		}
		sumS += p
	}
	for _, c := range contradicted {
		p, err := m.YesProbability(ctx, req(c))
		if err != nil {
			t.Fatal(err)
		}
		sumC += p
	}
	if sumS <= sumC {
		t.Errorf("supported mean %.3f not above contradicted mean %.3f", sumS/3, sumC/3)
	}
}

func TestChatGPTQuantization(t *testing.T) {
	ctx := context.Background()
	m := NewChatGPTStyle()
	q := float64(m.Profile().Quantize)
	claims := []string{
		"The working hours are 9 AM to 5 PM.",
		"The working hours are 9 AM to 9 PM.",
		"The store is open from Monday to Friday.",
	}
	for _, c := range claims {
		p, err := m.YesProbability(ctx, req(c))
		if err != nil {
			t.Fatal(err)
		}
		scaled := p * q
		rounded := float64(int(scaled + 0.5))
		// Either exactly on the grid or clamped at the extremes.
		if diff := scaled - rounded; diff > 1e-9 || diff < -1e-9 {
			if p > 0.0001 && p < 0.9999 {
				t.Errorf("P(True)=%v is not on the %v-level grid", p, q)
			}
		}
	}
}

func TestCalibratedRejectsEmptyClaim(t *testing.T) {
	ctx := context.Background()
	if _, err := NewQwen2().YesProbability(ctx, VerifyRequest{Claim: " "}); err == nil {
		t.Error("empty claim accepted")
	}
}

func TestCalibratedHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewQwen2().YesProbability(ctx, req("anything")); err == nil {
		t.Error("cancelled context not honoured")
	}
}

func TestCalibratedConcurrent(t *testing.T) {
	// The verifier shares a signature cache across goroutines; hammer
	// it to catch races (run with -race).
	m := NewQwen2()
	ctx := context.Background()
	var wg sync.WaitGroup
	claims := []string{
		"The working hours are 9 AM to 5 PM.",
		"The working hours are 9 AM to 9 PM.",
		"The store is open from Monday to Friday.",
		"At least three shopkeepers are needed.",
	}
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if _, err := m.YesProbability(ctx, req(claims[i%len(claims)])); err != nil {
					errs <- err
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestOracle(t *testing.T) {
	ctx := context.Background()
	good, err := Oracle{}.YesProbability(ctx, req("The working hours are 9 AM to 5 PM."))
	if err != nil {
		t.Fatal(err)
	}
	bad, err := Oracle{}.YesProbability(ctx, req("The working hours are 9 AM to 9 PM."))
	if err != nil {
		t.Fatal(err)
	}
	if good <= bad {
		t.Errorf("oracle good %v not above bad %v", good, bad)
	}
	if (Oracle{}).Name() != "oracle" {
		t.Error("oracle name")
	}
}

func TestConstant(t *testing.T) {
	ctx := context.Background()
	c := Constant{ModelName: "const", P: 0.42}
	p, err := c.YesProbability(ctx, req("x"))
	if err != nil || p != 0.42 {
		t.Errorf("Constant = %v, %v", p, err)
	}
	if c.Name() != "const" {
		t.Error("Constant name")
	}
}

func TestNewCalibratedProfilesDiffer(t *testing.T) {
	// Two verifiers with different names must get different jittered
	// weights and different idiosyncrasy networks.
	a := MustCalibrated(Profile{Name: "model-a", Sharpness: 2, NoiseAmp: 0.5, DilutionHalfLife: 7, OutputScale: 1})
	b := MustCalibrated(Profile{Name: "model-b", Sharpness: 2, NoiseAmp: 0.5, DilutionHalfLife: 7, OutputScale: 1})
	ctx := context.Background()
	r := req("The working hours are 9 AM to 5 PM.")
	pa, _ := a.YesProbability(ctx, r)
	pb, _ := b.YesProbability(ctx, r)
	if pa == pb {
		t.Error("differently-named profiles behave identically")
	}
}
