// Package slm provides the small-language-model substrate of the
// framework: a Model interface exposing the first-token yes-probability
// P(token1 = yes | q, c, r) of paper Eq. 2–3, a pure-Go decoder-only
// transformer inference engine (tokenizer → embeddings → multi-head
// attention with KV cache → FFN → logits), and two synthetic verifier
// backends that stand in for Qwen2-1.5B-Instruct and MiniCPM-2B
// (see DESIGN.md §1 for the substitution argument).
//
// Each synthetic model is a deterministic function of its name and its
// input: the same (question, context, claim) triple always yields the
// same probability, and different models disagree in model-specific,
// input-correlated ways — the property that makes the paper's
// multi-model checker (Eq. 4–5) meaningful.
package slm

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
)

// VerifyRequest carries one verification unit: the user's question q_i,
// the retrieved context c_i, and the claim to check — either a full
// response r_i or one split sentence r_{i,j}.
type VerifyRequest struct {
	Question string
	Context  string
	Claim    string
}

// Validate reports a request with an empty claim, which no backend can
// score meaningfully.
func (r VerifyRequest) Validate() error {
	if strings.TrimSpace(r.Claim) == "" {
		return errors.New("slm: empty claim")
	}
	return nil
}

// Model is a language model able to judge whether a claim is supported
// by a context. Implementations must be safe for concurrent use.
type Model interface {
	// Name identifies the model (used for per-model normalization
	// bookkeeping in the checker).
	Name() string
	// YesProbability returns P(token1 = yes | question, context, claim)
	// in [0, 1]. The ctx allows cancellation of long verifications.
	YesProbability(ctx context.Context, req VerifyRequest) (float64, error)
}

// VerificationPrompt renders the paper's Fig. 1 prompt shape: the
// model is shown the question, the context and the claim, and is asked
// to begin its answer with YES or NO. All models share one prompt
// (the paper's Eq. 2 note: "prompt is omitted as all SLMs use the same
// prompt").
func VerificationPrompt(req VerifyRequest) string {
	var b strings.Builder
	b.WriteString("You are a strict verifier. Given the question, the context and a candidate answer, ")
	b.WriteString("reply with YES if the answer is fully supported by the context, otherwise reply NO.\n")
	fmt.Fprintf(&b, "Question: %s\n", req.Question)
	fmt.Fprintf(&b, "Context: %s\n", req.Context)
	fmt.Fprintf(&b, "Answer: %s\n", req.Claim)
	b.WriteString("Is the answer supported by the context? Reply YES or NO:")
	return b.String()
}

// clamp01 bounds a probability to [lo, 1-lo] so downstream log/ratio
// math never sees exact 0 or 1.
func clampProb(p, lo float64) float64 {
	if p < lo {
		return lo
	}
	if p > 1-lo {
		return 1 - lo
	}
	return p
}

// sigmoid is the logistic link used to map evidence scores to
// probabilities.
func sigmoid(x float64) float64 {
	if x >= 0 {
		e := math.Exp(-x)
		return 1 / (1 + e)
	}
	e := math.Exp(x)
	return e / (1 + e)
}
