package adaptive

import (
	"sync"
	"testing"
	"time"
)

func TestDefaultsAndClamps(t *testing.T) {
	c := New(Config{})
	limit, wait := c.Limits()
	if limit != 1 {
		t.Fatalf("fresh adaptive controller limit = %d, want MinBatch 1", limit)
	}
	if wait != 200*time.Microsecond {
		t.Fatalf("fresh adaptive controller wait = %v, want 200µs", wait)
	}
	if c.Static() {
		t.Fatal("default controller reported Static")
	}
}

func TestStaticPinsAtMax(t *testing.T) {
	c := New(Config{MaxBatch: 32, MaxWait: 5 * time.Millisecond, Static: true})
	for i := 0; i < 100; i++ {
		c.Observe(1, false, 0) // sparse traffic would shrink an adaptive controller
	}
	limit, wait := c.Limits()
	if limit != 32 || wait != 5*time.Millisecond {
		t.Fatalf("static controller moved to (%d, %v)", limit, wait)
	}
	st := c.Stats()
	if st.Adaptive || st.Grows != 0 || st.Shrinks != 0 {
		t.Fatalf("static controller stats = %+v", st)
	}
}

func TestGrowsUnderPressureToMax(t *testing.T) {
	c := New(Config{MaxBatch: 16})
	for i := 0; i < 100; i++ {
		limit, _ := c.Limits()
		c.Observe(limit, true, 3)
	}
	limit, _ := c.Limits()
	if limit != 16 {
		t.Fatalf("limit = %d after sustained pressure, want MaxBatch 16", limit)
	}
	if st := c.Stats(); st.Grows == 0 {
		t.Fatalf("no grows recorded: %+v", st)
	}
}

func TestQueueDepthAloneGrows(t *testing.T) {
	c := New(Config{MaxBatch: 16})
	before, _ := c.Limits()
	c.Observe(before, false, 5) // timer flush, but a backlog is waiting
	after, _ := c.Limits()
	if after <= before {
		t.Fatalf("queued backlog did not grow the limit: %d -> %d", before, after)
	}
}

func TestShrinksWhenSparse(t *testing.T) {
	c := New(Config{MaxBatch: 16, MaxWait: 2 * time.Millisecond})
	// Grow to max first (a backlog is what lifts the limit off the
	// floor — full batches at limit 1 are vacuous).
	for i := 0; i < 100; i++ {
		limit, _ := c.Limits()
		c.Observe(limit, true, 1)
	}
	// Then traffic goes sparse: timer flushes with one item each (a
	// real collector reports full only once the limit is down to 1).
	for i := 0; i < 100; i++ {
		limit, _ := c.Limits()
		c.Observe(1, limit <= 1, 0)
	}
	limit, wait := c.Limits()
	if limit != 1 {
		t.Fatalf("limit = %d after sustained sparse traffic, want MinBatch 1", limit)
	}
	if wait != 200*time.Microsecond {
		t.Fatalf("wait = %v after sustained sparse traffic, want MinWait", wait)
	}
	if st := c.Stats(); st.Shrinks == 0 {
		t.Fatalf("no shrinks recorded: %+v", st)
	}
}

func TestDecentOccupancyGrowsWaitOnly(t *testing.T) {
	c := New(Config{MinBatch: 8, MaxBatch: 16, MaxWait: 2 * time.Millisecond})
	limitBefore, waitBefore := c.Limits()
	c.Observe(6, false, 0) // 6/8 = 75% full on a timer flush
	limitAfter, waitAfter := c.Limits()
	if limitAfter != limitBefore {
		t.Fatalf("limit moved on a decent-occupancy timer flush: %d -> %d", limitBefore, limitAfter)
	}
	if waitAfter <= waitBefore {
		t.Fatalf("wait did not grow: %v -> %v", waitBefore, waitAfter)
	}
	// And it saturates at MaxWait.
	for i := 0; i < 100; i++ {
		c.Observe(6, false, 0)
	}
	if _, w := c.Limits(); w != 2*time.Millisecond {
		t.Fatalf("wait = %v, want MaxWait cap", w)
	}
}

func TestNeverLeavesBounds(t *testing.T) {
	cfg := Config{MinBatch: 2, MaxBatch: 12, MinWait: time.Millisecond, MaxWait: 4 * time.Millisecond}
	c := New(cfg)
	obs := []struct {
		n      int
		full   bool
		queued int
	}{
		{12, true, 9}, {1, false, 0}, {6, false, 0}, {12, true, 0},
		{1, false, 0}, {1, false, 0}, {3, false, 2}, {0, false, 0},
	}
	for round := 0; round < 50; round++ {
		for _, o := range obs {
			c.Observe(o.n, o.full, o.queued)
			limit, wait := c.Limits()
			if limit < 2 || limit > 12 {
				t.Fatalf("limit %d escaped [2,12]", limit)
			}
			if wait < time.Millisecond || wait > 4*time.Millisecond {
				t.Fatalf("wait %v escaped [1ms,4ms]", wait)
			}
		}
	}
}

func TestConcurrentObserveRaceClean(t *testing.T) {
	c := New(Config{MaxBatch: 16})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				limit, _ := c.Limits()
				c.Observe((g+i)%17, g%2 == 0, i%3)
				_ = limit
				c.Stats()
			}
		}(g)
	}
	wg.Wait()
}
