// Package adaptive implements the AIMD batch-tuning controller shared
// by the verification micro-batcher and the streaming ingest pipeline
// (internal/serve and internal/ingest). Instead of pinning a static
// MaxBatch/MaxWait, the controller moves a (batch limit, linger wait)
// pair inside configured bounds from two observed signals: how full
// dispatched batches run (occupancy) and whether work is queued behind
// the batcher (queue depth) — the same fields GET /stats exposes.
//
// The control law is classic AIMD:
//
//   - a batch that fills its limit before the linger timer, or flushes
//     with more work already queued, is evidence of pressure: the limit
//     grows additively (amortizing per-dispatch overhead over more
//     items);
//   - a batch flushed by the timer while mostly empty is evidence of
//     sparse traffic: the limit halves and the linger wait shrinks, so
//     a lone request stops paying latency waiting for company that is
//     not coming;
//   - a batch flushed by the timer at decent occupancy nudges the wait
//     up additively — a slightly longer linger would have filled it.
//
// Additive increase reacts within a handful of dispatches (batches are
// millisecond-scale), multiplicative decrease gives bursts back their
// latency as soon as they end.
package adaptive

import (
	"sync"
	"time"
)

// Config bounds the controller. Zero values take the documented
// defaults.
type Config struct {
	// MinBatch / MaxBatch clamp the batch limit (defaults 1 and 16).
	MinBatch int
	MaxBatch int
	// MinWait / MaxWait clamp the linger wait (defaults 200µs and 2ms).
	MinWait time.Duration
	MaxWait time.Duration
	// Static pins the controller at (MaxBatch, MaxWait) — the pre-AIMD
	// behaviour, kept for A/B benchmarks and operators who want fixed
	// knobs.
	Static bool
	// IncreaseStep is the additive limit increment under pressure
	// (default max(1, MaxBatch/8)).
	IncreaseStep int
	// LowOccupancy is the fill fraction below which a timer flush
	// triggers multiplicative decrease (default 0.5).
	LowOccupancy float64
}

func (c Config) withDefaults() Config {
	if c.MinBatch <= 0 {
		c.MinBatch = 1
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.MaxBatch < c.MinBatch {
		c.MaxBatch = c.MinBatch
	}
	if c.MinWait <= 0 {
		c.MinWait = 200 * time.Microsecond
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.MaxWait < c.MinWait {
		c.MaxWait = c.MinWait
	}
	if c.IncreaseStep <= 0 {
		c.IncreaseStep = c.MaxBatch / 8
		if c.IncreaseStep < 1 {
			c.IncreaseStep = 1
		}
	}
	if c.LowOccupancy <= 0 || c.LowOccupancy >= 1 {
		c.LowOccupancy = 0.5
	}
	return c
}

// Controller is the shared AIMD state. All methods are safe for
// concurrent use; Limits/Observe are a few atomic-scale mutex ops, far
// below the cost of the dispatches they tune.
type Controller struct {
	cfg Config

	mu    sync.Mutex
	limit int
	wait  time.Duration

	grows   uint64
	shrinks uint64
}

// New builds a controller. An adaptive controller starts at
// (MinBatch, MinWait) — light traffic pays minimal latency from the
// first request, and bursts grow the limit within a few dispatches. A
// Static controller starts and stays at (MaxBatch, MaxWait).
func New(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{cfg: cfg, limit: cfg.MinBatch, wait: cfg.MinWait}
	if cfg.Static {
		c.limit, c.wait = cfg.MaxBatch, cfg.MaxWait
	}
	return c
}

// Static reports whether the controller is pinned.
func (c *Controller) Static() bool { return c.cfg.Static }

// Limits returns the current (batch limit, linger wait) pair a
// collector should use for its next batch.
func (c *Controller) Limits() (limit int, wait time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.limit, c.wait
}

// Observe feeds one dispatch back into the controller: n items were
// flushed, full reports whether the batch hit its limit before the
// linger timer, and queued is the backlog visible behind the batcher
// at flush time.
func (c *Controller) Observe(n int, full bool, queued int) {
	if c.cfg.Static || n <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case queued > 0 || (full && c.limit > 1):
		// Pressure: more work wanted in than the limit allowed. A full
		// batch at limit 1 is vacuous (any lone request fills it), so
		// growth from the floor needs a real backlog behind the batcher.
		if c.limit < c.cfg.MaxBatch {
			c.limit += c.cfg.IncreaseStep
			if c.limit > c.cfg.MaxBatch {
				c.limit = c.cfg.MaxBatch
			}
			c.grows++
		}
	case full:
		// Limit 1, no backlog: lone requests arriving one at a time —
		// nothing to tune.
	// Inclusive comparison so the floor stays reachable: at limit 2,
	// a lone item is exactly LowOccupancy and must still shrink.
	case float64(n) <= c.cfg.LowOccupancy*float64(c.limit):
		// Timer flush, mostly empty: traffic is sparse, stop waiting.
		if c.limit > c.cfg.MinBatch || c.wait > c.cfg.MinWait {
			c.shrinks++
		}
		c.limit /= 2
		if c.limit < c.cfg.MinBatch {
			c.limit = c.cfg.MinBatch
		}
		c.wait /= 2
		if c.wait < c.cfg.MinWait {
			c.wait = c.cfg.MinWait
		}
	default:
		// Timer flush at decent occupancy: a slightly longer linger
		// would have filled the batch.
		if c.wait < c.cfg.MaxWait {
			c.wait += c.cfg.MaxWait / 8
			if c.wait > c.cfg.MaxWait {
				c.wait = c.cfg.MaxWait
			}
		}
	}
}

// Stats is the controller's /stats section.
type Stats struct {
	// Adaptive is false when the controller is pinned Static.
	Adaptive bool `json:"adaptive"`
	// Limit / WaitMicros are the current operating point.
	Limit      int   `json:"limit"`
	WaitMicros int64 `json:"wait_micros"`
	// Grows / Shrinks count additive increases and multiplicative
	// decreases since start.
	Grows   uint64 `json:"grows"`
	Shrinks uint64 `json:"shrinks"`
}

// Stats snapshots the controller.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Adaptive:   !c.cfg.Static,
		Limit:      c.limit,
		WaitMicros: c.wait.Microseconds(),
		Grows:      c.grows,
		Shrinks:    c.shrinks,
	}
}
