// Package storage is the durable substrate shared by every layer that
// persists index state: a segment-based write-ahead log with CRC-framed
// records and torn-tail truncation on open, and a versioned snapshot
// codec with atomic replace semantics. vecdb checkpoints are built on
// the snapshot codec; internal/serve journals per-shard mutations
// through the WAL and replays them on top of the latest checkpoint at
// startup. See docs/persistence.md for the on-disk format and the
// recovery sequence.
package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// SyncPolicy controls when WAL appends reach stable storage.
type SyncPolicy int

const (
	// SyncNever leaves flushing to the OS page cache; data survives
	// process crashes but not machine crashes until the next explicit
	// Sync (rotation, truncation and Close always sync).
	SyncNever SyncPolicy = iota
	// SyncAlways fsyncs after every append (and once per batch for
	// AppendBatch) — the strongest and slowest policy.
	SyncAlways
	// SyncInterval relies on the owner calling Sync on a timer; appends
	// themselves do not fsync.
	SyncInterval
)

// String names the policy for flags and logs.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	default:
		return "never"
	}
}

// ParseSyncPolicy maps flag values onto policies.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "never", "":
		return SyncNever, nil
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	}
	return SyncNever, fmt.Errorf("storage: unknown sync policy %q (want never|always|interval)", s)
}

// WALOptions tune a log. Zero values take the documented defaults.
type WALOptions struct {
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 4 MiB). Rotation bounds the cost of the final-segment
	// tail scan on recovery.
	SegmentBytes int64
	// Sync is the fsync policy (default SyncNever).
	Sync SyncPolicy
	// Telemetry, when non-nil, receives wal_append / wal_fsync stage
	// timings. Every WAL handed the same registry shares the same
	// series, so per-shard logs aggregate naturally.
	Telemetry *telemetry.Registry
}

const defaultSegmentBytes = 4 << 20

// Record framing: [4B little-endian payload length][4B CRC-32
// (IEEE) of payload][payload]. A record whose header or payload runs
// past the end of the final segment, or whose CRC does not match, is a
// torn tail: Open truncates the segment to the last whole record.
const recordHeader = 8

// maxRecordBytes rejects absurd lengths so a corrupt header cannot
// drive a multi-gigabyte allocation during the tail scan.
const maxRecordBytes = 64 << 20

// ErrCorrupt reports framing damage before the final segment's tail —
// data that a truncation cannot repair without silently dropping
// records that were once durable.
var ErrCorrupt = errors.New("storage: wal corrupt before tail")

// errTorn tags framing damage (short record, CRC mismatch, implausible
// length) as opposed to an I/O error from the device. Only torn tails
// may be truncated away; truncating on a transient read error would
// destroy records that are actually intact.
var errTorn = errors.New("torn record")

// WAL is an append-only, segmented, CRC-framed log. All methods are
// safe for concurrent use; appends are serialized internally.
type WAL struct {
	mu      sync.Mutex
	dir     string
	opts    WALOptions
	active  *os.File
	actSize int64
	actSeq  uint64
	size    int64 // bytes across all segments
	records uint64
	closed  bool

	// Stage timing histograms; nil (no-op) when no registry was given.
	appendH *telemetry.Histogram
	fsyncH  *telemetry.Histogram
}

// segmentName formats the file for sequence number seq.
func segmentName(seq uint64) string { return fmt.Sprintf("wal-%016d.seg", seq) }

// segmentSeq parses a segment filename, reporting ok=false for foreign
// files.
func segmentSeq(name string) (uint64, bool) {
	var seq uint64
	if n, err := fmt.Sscanf(name, "wal-%016d.seg", &seq); n != 1 || err != nil {
		return 0, false
	}
	return seq, true
}

// OpenWAL opens (creating if needed) the log rooted at dir, scans every
// segment to validate framing, and truncates a torn tail in the final
// segment. After Open the log is ready for both Replay and Append.
func OpenWAL(dir string, opts WALOptions) (*WAL, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: wal dir: %w", err)
	}
	w := &WAL{dir: dir, opts: opts}
	w.appendH = opts.Telemetry.Histogram("stage_duration_seconds",
		"Hot-path stage latency in seconds.", nil, telemetry.L("stage", "wal_append"))
	w.fsyncH = opts.Telemetry.Histogram("stage_duration_seconds",
		"Hot-path stage latency in seconds.", nil, telemetry.L("stage", "wal_fsync"))
	seqs, err := w.segments()
	if err != nil {
		return nil, err
	}
	for i, seq := range seqs {
		final := i == len(seqs)-1
		n, size, err := w.scanSegment(seq, final)
		if err != nil {
			return nil, err
		}
		w.records += n
		w.size += size
	}
	var openSeq uint64 = 1
	if len(seqs) > 0 {
		openSeq = seqs[len(seqs)-1]
	}
	if err := w.openSegment(openSeq); err != nil {
		return nil, err
	}
	return w, nil
}

// segments lists existing segment sequence numbers in order.
func (w *WAL) segments() ([]uint64, error) {
	ents, err := os.ReadDir(w.dir)
	if err != nil {
		return nil, fmt.Errorf("storage: wal dir: %w", err)
	}
	var seqs []uint64
	for _, e := range ents {
		if seq, ok := segmentSeq(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// scanSegment validates every record in segment seq and returns the
// record count and validated byte size. In the final segment a torn
// tail is truncated away; anywhere else it is ErrCorrupt.
func (w *WAL) scanSegment(seq uint64, final bool) (records uint64, size int64, err error) {
	path := filepath.Join(w.dir, segmentName(seq))
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return 0, 0, fmt.Errorf("storage: wal open segment: %w", err)
	}
	defer f.Close()
	good, records, scanErr := scanRecords(bufio.NewReaderSize(f, 256<<10), nil)
	if scanErr != nil {
		if !errors.Is(scanErr, errTorn) {
			// A read error from the device, not framing damage —
			// truncating here could destroy intact records.
			return 0, 0, fmt.Errorf("storage: wal scan segment %d: %w", seq, scanErr)
		}
		if !final {
			return 0, 0, fmt.Errorf("%w: segment %d: %v", ErrCorrupt, seq, scanErr)
		}
		if err := f.Truncate(good); err != nil {
			return 0, 0, fmt.Errorf("storage: wal truncate torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			return 0, 0, fmt.Errorf("storage: wal sync after truncate: %w", err)
		}
	}
	return records, good, nil
}

// scanRecords walks framed records from r, invoking fn (when non-nil)
// with each valid payload. It returns the byte offset after the last
// whole valid record; err is non-nil when the stream ends in anything
// but a clean record boundary.
func scanRecords(r io.Reader, fn func(payload []byte) error) (good int64, records uint64, err error) {
	br := &countingReader{r: r}
	var hdr [recordHeader]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return good, records, nil
			}
			if err == io.ErrUnexpectedEOF {
				return good, records, fmt.Errorf("%w: short header at %d", errTorn, good)
			}
			return good, records, fmt.Errorf("read at %d: %w", good, err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if length > maxRecordBytes {
			return good, records, fmt.Errorf("%w: implausible record length %d at %d", errTorn, length, good)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return good, records, fmt.Errorf("%w: short payload at %d", errTorn, good)
			}
			return good, records, fmt.Errorf("read at %d: %w", good, err)
		}
		if crc32.ChecksumIEEE(payload) != want {
			return good, records, fmt.Errorf("%w: crc mismatch at %d", errTorn, good)
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return good, records, err
			}
		}
		good = br.n
		records++
	}
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// openSegment opens segment seq for appending and makes it active.
func (w *WAL) openSegment(seq uint64) error {
	f, err := os.OpenFile(filepath.Join(w.dir, segmentName(seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("storage: wal open segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("storage: wal stat segment: %w", err)
	}
	w.active, w.actSize, w.actSeq = f, st.Size(), seq
	return nil
}

// Replay streams every durable payload, oldest first, to fn. It may be
// called at any time but is meant for recovery, before new appends.
// Replay does not consume the log; pair it with Truncate after a
// successful checkpoint.
func (w *WAL) Replay(fn func(payload []byte) error) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, errors.New("storage: wal closed")
	}
	seqs, err := w.segments()
	if err != nil {
		return 0, err
	}
	total := 0
	for _, seq := range seqs {
		f, err := os.Open(filepath.Join(w.dir, segmentName(seq)))
		if err != nil {
			return total, fmt.Errorf("storage: wal replay: %w", err)
		}
		// Open already truncated torn tails, so any framing error here
		// is a real corruption (or a callback error) — surface it.
		_, n, err := scanRecords(bufio.NewReaderSize(f, 256<<10), fn)
		f.Close()
		total += int(n)
		if err != nil {
			return total, fmt.Errorf("storage: wal replay segment %d: %w", seq, err)
		}
	}
	return total, nil
}

// Append frames payload and writes it to the active segment, rotating
// first when the segment is full. Under SyncAlways the record is
// fsynced before Append returns.
func (w *WAL) Append(payload []byte) error {
	return w.AppendBatch([][]byte{payload})
}

// AppendBatch appends several records with one lock acquisition and —
// under SyncAlways — one fsync for the whole batch, the bulk-ingest
// fast path. The batch is all-or-nothing: a write failure truncates
// the segment back to the pre-batch offset, so a crash can never
// resurrect the durable prefix of a batch the caller was told failed.
func (w *WAL) AppendBatch(payloads [][]byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("storage: wal closed")
	}
	// Validate before writing anything: a record recovery would refuse
	// to read must never be acknowledged.
	for _, payload := range payloads {
		if len(payload) > maxRecordBytes {
			return fmt.Errorf("storage: wal record of %d bytes exceeds max %d", len(payload), maxRecordBytes)
		}
	}
	if w.actSize >= w.opts.SegmentBytes {
		if err := w.rotate(); err != nil {
			return err
		}
	}
	appendStart := time.Now()
	defer w.appendH.ObserveSince(appendStart)
	start, startTotal, startRecords := w.actSize, w.size, w.records
	abort := func(err error) error {
		if terr := w.active.Truncate(start); terr != nil {
			// The segment may now end in whole records from the failed
			// batch; only replacing the handle state can't fix that, so
			// report both failures loudly.
			return fmt.Errorf("storage: wal append failed (%v) and rollback truncate failed: %w", err, terr)
		}
		w.actSize, w.size, w.records = start, startTotal, startRecords
		return fmt.Errorf("storage: wal append: %w", err)
	}
	var hdr [recordHeader]byte
	for _, payload := range payloads {
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
		if _, err := w.active.Write(hdr[:]); err != nil {
			return abort(err)
		}
		if _, err := w.active.Write(payload); err != nil {
			return abort(err)
		}
		n := int64(recordHeader + len(payload))
		w.actSize += n
		w.size += n
		w.records++
	}
	if w.opts.Sync == SyncAlways {
		fsyncStart := time.Now()
		defer w.fsyncH.ObserveSince(fsyncStart)
		if err := w.active.Sync(); err != nil {
			// The batch was reported failed; drop it from the file too so
			// memory (rolled back by the caller) and disk agree.
			return abort(err)
		}
	}
	return nil
}

// rotate syncs and closes the active segment and starts the next one.
// Callers hold w.mu.
func (w *WAL) rotate() error {
	if err := w.active.Sync(); err != nil {
		return fmt.Errorf("storage: wal fsync on rotate: %w", err)
	}
	if err := w.active.Close(); err != nil {
		return fmt.Errorf("storage: wal close on rotate: %w", err)
	}
	return w.openSegment(w.actSeq + 1)
}

// Sync flushes the active segment to stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	start := time.Now()
	defer w.fsyncH.ObserveSince(start)
	if err := w.active.Sync(); err != nil {
		return fmt.Errorf("storage: wal fsync: %w", err)
	}
	return nil
}

// Truncate drops every record — called after the state it describes is
// captured by a durable checkpoint. The log continues on a fresh
// segment numbered after the dropped ones, so a crash between unlinks
// cannot resurrect stale records ahead of new ones. On any error the
// log remains appendable (with its counters intact, so the owner
// retries the truncation later); segments that survive a failed unlink
// replay idempotently, since the checkpoint already reflects them.
func (w *WAL) Truncate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("storage: wal closed")
	}
	seqs, err := w.segments()
	if err != nil {
		return err
	}
	// Open the successor segment before closing or unlinking anything,
	// so a failure at any step never leaves the active handle closed.
	old, oldSize, oldSeq := w.active, w.actSize, w.actSeq
	if err := w.openSegment(oldSeq + 1); err != nil {
		w.active, w.actSize, w.actSeq = old, oldSize, oldSeq
		return err
	}
	old.Close() // contents are being discarded; close errors are moot
	var firstErr error
	for _, seq := range seqs {
		if err := os.Remove(filepath.Join(w.dir, segmentName(seq))); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("storage: wal remove segment: %w", err)
		}
	}
	if firstErr != nil {
		return firstErr
	}
	w.size, w.records = 0, 0
	return syncDir(w.dir)
}

// Size reports the validated byte size across all segments.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Records reports the number of durable records currently in the log
// (appended or recovered, minus truncations).
func (w *WAL) Records() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records
}

// Close syncs and closes the active segment. The log can be reopened
// with OpenWAL.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.active.Sync(); err != nil {
		w.active.Close()
		return fmt.Errorf("storage: wal fsync on close: %w", err)
	}
	return w.active.Close()
}

// syncDir fsyncs a directory so renames and unlinks inside it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("storage: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("storage: dir sync: %w", err)
	}
	return nil
}
