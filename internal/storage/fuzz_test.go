package storage

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// frameRecords builds a valid CRC-framed stream from payloads — the
// well-formed seeds the fuzzer mutates from.
func frameRecords(payloads ...[]byte) []byte {
	var out []byte
	for _, p := range payloads {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(p)))
		out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(p))
		out = append(out, p...)
	}
	return out
}

// FuzzWALRecord drives the WAL's record scanner — the code that
// parses whatever bytes a crash left in a segment — over arbitrary
// input, asserting the invariants recovery depends on:
//
//   - the scan never panics and never reads past the input;
//   - the reported good offset always lands on a record boundary:
//     re-scanning input[:good] yields the same record count and no
//     error (this is exactly the truncate-to-last-whole-record
//     contract Open relies on);
//   - a clean scan consumed every byte.
func FuzzWALRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add(frameRecords([]byte("one")))
	f.Add(frameRecords([]byte("one"), []byte("two"), []byte{}))
	f.Add(frameRecords(EncodeSeqPayload(7, []byte{1, 42, 0, 0, 0, 0, 0, 0, 0})))
	// Torn variants: half a record, corrupt CRC, implausible length.
	whole := frameRecords([]byte("abcdef"))
	f.Add(whole[:len(whole)-3])
	bad := append([]byte(nil), whole...)
	bad[4] ^= 0xFF
	f.Add(bad)
	f.Add(binary.LittleEndian.AppendUint32(nil, 1<<30))

	f.Fuzz(func(t *testing.T, data []byte) {
		var payloads [][]byte
		good, n, err := scanRecords(bytes.NewReader(data), func(p []byte) error {
			payloads = append(payloads, append([]byte(nil), p...))
			return nil
		})
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("good offset %d out of range [0,%d]", good, len(data))
		}
		if uint64(len(payloads)) != n {
			t.Fatalf("callback saw %d records, scan counted %d", len(payloads), n)
		}
		if err == nil && good != int64(len(data)) {
			t.Fatalf("clean scan stopped at %d of %d bytes", good, len(data))
		}
		// The truncation contract: the prefix up to good is a whole
		// number of valid records.
		good2, n2, err2 := scanRecords(bytes.NewReader(data[:good]), nil)
		if err2 != nil || good2 != good || n2 != n {
			t.Fatalf("re-scan of good prefix: good %d→%d records %d→%d err %v", good, good2, n, n2, err2)
		}
		// Every surfaced payload must survive the seq-frame split, and
		// framed ones must round-trip.
		for _, p := range payloads {
			seq, inner, framed, err := DecodeSeqPayload(p)
			if err != nil {
				continue // torn seq frame: rejected, never misread
			}
			if framed {
				if got := EncodeSeqPayload(seq, inner); !bytes.Equal(got, p) {
					t.Fatalf("seq frame did not round-trip: %x vs %x", got, p)
				}
			}
		}
	})
}

// FuzzSeqPayload round-trips the seq frame codec over arbitrary
// payloads and seqs.
func FuzzSeqPayload(f *testing.F) {
	f.Add(uint64(0), []byte{})
	f.Add(uint64(1), []byte{seqMarker})
	f.Add(uint64(1<<63), []byte("payload"))
	f.Fuzz(func(t *testing.T, seq uint64, payload []byte) {
		enc := EncodeSeqPayload(seq, payload)
		got, inner, framed, err := DecodeSeqPayload(enc)
		if err != nil || !framed || got != seq || !bytes.Equal(inner, payload) {
			t.Fatalf("round-trip: seq %d→%d framed=%v err=%v", seq, got, framed, err)
		}
	})
}
