package storage

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// collect replays w into a slice of payload copies.
func collect(t *testing.T, w *WAL) [][]byte {
	t.Helper()
	var got [][]byte
	n, err := w.Replay(func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if n != len(got) {
		t.Fatalf("replay count %d, callbacks %d", n, len(got))
	}
	return got
}

func TestWALAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("one"), []byte(""), bytes.Repeat([]byte("x"), 3000)}
	for _, p := range want {
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if got := collect(t, w); len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: all records survive, counters restored, appends continue.
	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.Records() != uint64(len(want)) {
		t.Errorf("Records() = %d, want %d", w2.Records(), len(want))
	}
	got := collect(t, w2)
	for i, p := range want {
		if !bytes.Equal(got[i], p) {
			t.Errorf("record %d = %q, want %q", i, got[i], p)
		}
	}
	if err := w2.Append([]byte("four")); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, w2); len(got) != 4 || string(got[3]) != "four" {
		t.Errorf("after reopen+append, replay = %q", got)
	}
}

// lastSegment returns the path of the newest segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var last string
	for _, e := range ents {
		if _, ok := segmentSeq(e.Name()); ok {
			last = filepath.Join(dir, e.Name())
		}
	}
	if last == "" {
		t.Fatal("no segment files")
	}
	return last
}

func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Append([]byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last record: chop 3 bytes off the segment, as a crash
	// mid-write would.
	seg := lastSegment(t, dir)
	st, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, st.Size()-3); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatalf("open over torn tail: %v", err)
	}
	defer w2.Close()
	got := collect(t, w2)
	if len(got) != 4 {
		t.Fatalf("replayed %d records after torn tail, want 4", len(got))
	}
	// The log must accept appends cleanly after truncation.
	if err := w2.Append([]byte("post-crash")); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, w2); len(got) != 5 || string(got[4]) != "post-crash" {
		t.Errorf("post-truncate replay = %q", got)
	}
}

func TestWALCorruptCRCTruncated(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append([]byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the LAST record's payload: the log keeps the
	// clean prefix and drops the damaged tail.
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatalf("open over corrupt crc: %v", err)
	}
	defer w2.Close()
	if got := collect(t, w2); len(got) != 2 {
		t.Fatalf("replayed %d records after crc corruption, want 2", len(got))
	}
}

func TestWALCorruptionBeforeTailIsFatal(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force one record per segment.
	w, err := OpenWAL(dir, WALOptions{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append(bytes.Repeat([]byte{byte('a' + i)}, 32)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Damage the FIRST segment — not a tail, so truncation would lose
	// acknowledged records silently. Open must refuse.
	ents, _ := os.ReadDir(dir)
	first := filepath.Join(dir, ents[0].Name())
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	data[recordHeader+4] ^= 0xff
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(dir, WALOptions{SegmentBytes: 1}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open over mid-log corruption: err = %v, want ErrCorrupt", err)
	}
}

func TestWALSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if err := w.Append(bytes.Repeat([]byte{byte('0' + i%10)}, 40)); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) < 2 {
		t.Fatalf("expected rotation to produce multiple segments, got %d", len(ents))
	}
	if got := collect(t, w); len(got) != n {
		t.Fatalf("replay across segments = %d records, want %d", len(got), n)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(dir, WALOptions{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := collect(t, w2); len(got) != n {
		t.Fatalf("replay after reopen = %d records, want %d", len(got), n)
	}
}

func TestWALTruncateDropsRecords(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 10; i++ {
		if err := w.Append([]byte("checkpointed")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Truncate(); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 0 || w.Size() != 0 {
		t.Errorf("after truncate: records=%d size=%d", w.Records(), w.Size())
	}
	if got := collect(t, w); len(got) != 0 {
		t.Fatalf("replay after truncate = %d records, want 0", len(got))
	}
	if err := w.Append([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, w); len(got) != 1 || string(got[0]) != "fresh" {
		t.Errorf("replay after truncate+append = %q", got)
	}
}

func TestWALConcurrentAppendRaceClean(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := w.Append([]byte(fmt.Sprintf("g%d-%d", g, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := collect(t, w); len(got) != 400 {
		t.Fatalf("replayed %d records, want 400", len(got))
	}
}

func TestSnapshotRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.snap")
	payload := []byte("hello snapshot payload")
	if err := WriteSnapshot(path, 7, func(w io.Writer) error {
		_, err := w.Write(payload)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	var got []byte
	if err := ReadSnapshot(path, 7, func(r io.Reader) error {
		b, err := io.ReadAll(r)
		got = b
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("payload = %q, want %q", got, payload)
	}

	// Wrong version is typed.
	if err := ReadSnapshot(path, 8, func(io.Reader) error { return nil }); !errors.Is(err, ErrSnapshotVersion) {
		t.Errorf("version mismatch err = %v, want ErrSnapshotVersion", err)
	}

	// Corrupt payload byte → ErrBadSnapshot, decoder never runs.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[snapshotHeader] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	err = ReadSnapshot(path, 7, func(io.Reader) error {
		t.Error("decoder ran on corrupt snapshot")
		return nil
	})
	if !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("corrupt snapshot err = %v, want ErrBadSnapshot", err)
	}

	// Truncated file (shorter than header+trailer) → ErrBadSnapshot.
	if err := os.WriteFile(path, data[:6], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ReadSnapshot(path, 7, func(io.Reader) error { return nil }); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("short snapshot err = %v, want ErrBadSnapshot", err)
	}

	// Missing file surfaces as not-exist so callers can cold-start.
	if err := ReadSnapshot(filepath.Join(t.TempDir(), "missing.snap"), 7, nil); !os.IsNotExist(err) {
		t.Errorf("missing snapshot err = %v, want not-exist", err)
	}
}

func TestSnapshotAtomicReplace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.snap")
	for gen := 0; gen < 3; gen++ {
		want := fmt.Sprintf("generation-%d", gen)
		if err := WriteSnapshot(path, 1, func(w io.Writer) error {
			_, err := io.WriteString(w, want)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		var got []byte
		if err := ReadSnapshot(path, 1, func(r io.Reader) error {
			b, err := io.ReadAll(r)
			got = b
			return err
		}); err != nil {
			t.Fatal(err)
		}
		if string(got) != want {
			t.Errorf("gen %d: payload = %q, want %q", gen, got, want)
		}
	}
	// No temp litter left behind.
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Errorf("directory has %d entries after rewrites, want 1", len(ents))
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"": SyncNever, "never": SyncNever, "always": SyncAlways, "interval": SyncInterval,
	} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseSyncPolicy("bogus"); err == nil {
		t.Error("ParseSyncPolicy(bogus) succeeded")
	}
}
