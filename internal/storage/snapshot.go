package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Snapshot file layout:
//
//	[8B magic "GARXSNAP"][4B LE format version][payload…][4B LE CRC-32
//	(IEEE) of payload]
//
// The version in the header is the *caller's* payload version (e.g.
// vecdb's snapshot version), so each subsystem evolves its wire form
// independently while sharing the framing, checksum and atomic-replace
// machinery. Snapshots are written to a temp file in the target
// directory, fsynced, then renamed over the destination, so readers
// only ever observe the old or the new complete snapshot.

var snapshotMagic = [8]byte{'G', 'A', 'R', 'X', 'S', 'N', 'A', 'P'}

const snapshotHeader = 12 // magic + version
const snapshotTrailer = 4 // crc

// ErrBadSnapshot reports a missing magic, short file, or checksum
// mismatch — the snapshot is unusable and the caller should fall back
// to an older checkpoint or an empty state plus WAL replay.
var ErrBadSnapshot = errors.New("storage: bad snapshot")

// ErrSnapshotVersion reports a payload version the caller does not
// understand.
var ErrSnapshotVersion = errors.New("storage: unsupported snapshot version")

// WriteSnapshot atomically replaces path with a framed snapshot whose
// payload is produced by encode.
func WriteSnapshot(path string, version uint32, encode func(w io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("storage: snapshot temp: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(tmp)
	var hdr [snapshotHeader]byte
	copy(hdr[:8], snapshotMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], version)
	if _, err = bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("storage: snapshot header: %w", err)
	}
	if err = encode(io.MultiWriter(bw, crc)); err != nil {
		return fmt.Errorf("storage: snapshot encode: %w", err)
	}
	var tail [snapshotTrailer]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	if _, err = bw.Write(tail[:]); err != nil {
		return fmt.Errorf("storage: snapshot trailer: %w", err)
	}
	if err = bw.Flush(); err != nil {
		return fmt.Errorf("storage: snapshot flush: %w", err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("storage: snapshot fsync: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("storage: snapshot close: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("storage: snapshot rename: %w", err)
	}
	return syncDir(dir)
}

// ReadSnapshot opens the snapshot at path, verifies magic and
// checksum, and hands the payload to decode. want is the only payload
// version accepted; a mismatch returns ErrSnapshotVersion. A missing
// file returns an error satisfying os.IsNotExist / fs.ErrNotExist.
func ReadSnapshot(path string, want uint32, decode func(r io.Reader) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return fmt.Errorf("storage: snapshot stat: %w", err)
	}
	if st.Size() < snapshotHeader+snapshotTrailer {
		return fmt.Errorf("%w: %s: short file", ErrBadSnapshot, path)
	}
	br := bufio.NewReader(f)
	var hdr [snapshotHeader]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("%w: %s: %v", ErrBadSnapshot, path, err)
	}
	if [8]byte(hdr[:8]) != snapshotMagic {
		return fmt.Errorf("%w: %s: bad magic", ErrBadSnapshot, path)
	}
	if got := binary.LittleEndian.Uint32(hdr[8:12]); got != want {
		return fmt.Errorf("%w: %s: version %d, want %d", ErrSnapshotVersion, path, got, want)
	}
	// Verify the checksum over the whole payload before decoding, so a
	// corrupt snapshot is reported as such rather than as a decoder
	// error on garbage.
	payloadLen := st.Size() - snapshotHeader - snapshotTrailer
	crc := crc32.NewIEEE()
	if _, err := io.CopyN(crc, br, payloadLen); err != nil {
		return fmt.Errorf("%w: %s: %v", ErrBadSnapshot, path, err)
	}
	var tail [snapshotTrailer]byte
	if _, err := io.ReadFull(br, tail[:]); err != nil {
		return fmt.Errorf("%w: %s: %v", ErrBadSnapshot, path, err)
	}
	if binary.LittleEndian.Uint32(tail[:]) != crc.Sum32() {
		return fmt.Errorf("%w: %s: checksum mismatch", ErrBadSnapshot, path)
	}
	if _, err := f.Seek(snapshotHeader, io.SeekStart); err != nil {
		return fmt.Errorf("storage: snapshot seek: %w", err)
	}
	return decode(io.LimitReader(bufio.NewReader(f), payloadLen))
}
