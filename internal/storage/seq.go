package storage

import (
	"encoding/binary"
	"fmt"
)

// Seq-framed WAL payloads. A WAL record's payload may carry the
// per-shard mutation sequence number it was applied at, so replica
// resync can serve "everything after seq S" straight from the
// segments and recovery can restore the journal position exactly:
//
//	[1B marker 0xA6][8B little-endian seq][inner payload]
//
// The marker byte distinguishes framed payloads from records written
// before seq tracking existed (vecdb mutation payloads start with the
// op byte, 0x01 or 0x02, never 0xA6): readers fall back to treating
// an unmarked payload as a legacy record with an unknown seq and
// synthesize the next number in the stream, so pre-upgrade WALs keep
// replaying.

const seqMarker = 0xA6

const seqFrameHeader = 9 // marker + seq

// EncodeSeqPayload frames payload with its sequence number.
func EncodeSeqPayload(seq uint64, payload []byte) []byte {
	out := make([]byte, 0, seqFrameHeader+len(payload))
	out = append(out, seqMarker)
	out = binary.LittleEndian.AppendUint64(out, seq)
	return append(out, payload...)
}

// DecodeSeqPayload splits a WAL payload into its sequence number and
// inner payload. framed is false for legacy records written without a
// seq frame — the inner payload is then the input itself and the
// caller assigns the next sequence number in its stream.
func DecodeSeqPayload(b []byte) (seq uint64, payload []byte, framed bool, err error) {
	if len(b) == 0 || b[0] != seqMarker {
		return 0, b, false, nil
	}
	if len(b) < seqFrameHeader {
		return 0, nil, false, fmt.Errorf("storage: truncated seq frame (%d bytes)", len(b))
	}
	return binary.LittleEndian.Uint64(b[1:seqFrameHeader]), b[seqFrameHeader:], true, nil
}
