//go:build cluster_integration

// This file ports the CI cluster-smoke shell job into go test: three
// real shardnode processes behind a routing ragserver, asserting
// merged top-k identical to a single-process twin, degraded-but-
// correct search after kill -9, and identical results again after the
// node restarts and recovers from its WAL. The CI job is now a thin
// wrapper around this test:
//
//	go test -tags cluster_integration -run TestClusterKillRecover -v .
//
// It builds the binaries it drives, so it needs a working `go build`
// and free loopback ports — which is why it hides behind the build
// tag instead of running in the default tier-1 suite.
package repro

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// freePort grabs an ephemeral loopback port. The listener is closed
// before the child process binds it — a small race, acceptable for a
// test that owns the machine while it runs.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}

// buildBinaries compiles ragserver and shardnode into dir.
func buildBinaries(t *testing.T, dir string) (ragserver, shardnode string) {
	t.Helper()
	ragserver = filepath.Join(dir, "ragserver")
	shardnode = filepath.Join(dir, "shardnode")
	for bin, pkg := range map[string]string{ragserver: "./cmd/ragserver", shardnode: "./cmd/shardnode"} {
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", pkg, err, out)
		}
	}
	return ragserver, shardnode
}

// proc is one child process under test control.
type proc struct {
	t   *testing.T
	cmd *exec.Cmd
}

func startProc(t *testing.T, bin string, args ...string) *proc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}
	p := &proc{t: t, cmd: cmd}
	t.Cleanup(func() { p.kill() })
	return p
}

// logBuffer is a concurrency-safe sink for a child process's output,
// so the test can grep captured request-log lines while the child is
// still writing them.
type logBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *logBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *logBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// startProcCapture is startProc teeing the child's output into a
// logBuffer as well as the test's stderr.
func startProcCapture(t *testing.T, bin string, args ...string) (*proc, *logBuffer) {
	t.Helper()
	buf := &logBuffer{}
	cmd := exec.Command(bin, args...)
	cmd.Stdout = io.MultiWriter(os.Stderr, buf)
	cmd.Stderr = io.MultiWriter(os.Stderr, buf)
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}
	p := &proc{t: t, cmd: cmd}
	t.Cleanup(func() { p.kill() })
	return p, buf
}

// kill sends SIGKILL — the ungraceful death the smoke is about — and
// reaps the child.
func (p *proc) kill() {
	if p.cmd.Process != nil {
		p.cmd.Process.Kill()
		p.cmd.Wait()
	}
}

func waitReady(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("%s never became ready", addr)
}

func postJSON(t *testing.T, url string, body string) []byte {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, buf.String())
	}
	return buf.Bytes()
}

// clusterStats is the slice of /stats this test asserts on.
type clusterStats struct {
	Cluster struct {
		Enabled bool `json:"enabled"`
		Shards  []struct {
			Alive bool `json:"alive"`
		} `json:"shards"`
		Router struct {
			DegradedQueries uint64 `json:"degraded_queries"`
		} `json:"router"`
	} `json:"cluster"`
}

func getStats(t *testing.T, addr string) clusterStats {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/stats")
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	defer resp.Body.Close()
	var st clusterStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode /stats: %v", err)
	}
	return st
}

func aliveShards(st clusterStats) int {
	n := 0
	for _, sh := range st.Cluster.Shards {
		if sh.Alive {
			n++
		}
	}
	return n
}

func waitAlive(t *testing.T, addr string, want int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if aliveShards(getStats(t, addr)) == want {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("never reached %d alive shards (now %d)", want, aliveShards(getStats(t, addr)))
}

// metricValue scrapes GET /metrics on addr and returns the value of
// the exact series line (name plus rendered label set), failing the
// test when the series is absent.
func metricValue(t *testing.T, addr, series string) float64 {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics on %s: %v", addr, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read /metrics on %s: %v", addr, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics on %s: status %d", addr, resp.StatusCode)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("parse %s on %s: %v (line %q)", series, addr, err, line)
			}
			return v
		}
	}
	t.Fatalf("series %s absent from %s/metrics:\n%s", series, addr, body)
	return 0
}

// searchHits runs one /search and returns the decoded hits plus the
// raw body (for exact cross-server comparison).
func searchHits(t *testing.T, addr, query string, k int) (int, string) {
	t.Helper()
	body := postJSON(t, "http://"+addr+"/search", fmt.Sprintf(`{"query":%q,"k":%d}`, query, k))
	var out struct {
		Hits []json.RawMessage `json:"hits"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decode search: %v", err)
	}
	return len(out.Hits), string(body)
}

var smokeCorpus = []string{
	"The store operates from 9 AM to 5 PM, from Sunday to Saturday.",
	"Employees are entitled to 14 days of paid annual leave per year.",
	"At least three shopkeepers are required to run a shop.",
	"Overtime is paid at one and a half times the hourly rate.",
	"The probation period lasts three months for all new hires.",
	"Annual performance reviews take place every December.",
}

// TestClusterKillRecover is the 3-node kill/recover smoke as a Go
// test: cluster == single-process on the same corpus; kill -9 one
// node → degraded but correct, ejection visible in /stats; restart on
// the same data dir → identical results again.
func TestClusterKillRecover(t *testing.T) {
	workDir := t.TempDir()
	ragserverBin, shardnodeBin := buildBinaries(t, workDir)

	// Three shard nodes, each with its own durable dir.
	nodePorts := make([]int, 3)
	nodeDirs := make([]string, 3)
	nodes := make([]*proc, 3)
	var node0Log *logBuffer
	for i := range nodes {
		nodePorts[i] = freePort(t)
		nodeDirs[i] = filepath.Join(workDir, fmt.Sprintf("shard%d", i))
		args := []string{
			"-addr", fmt.Sprintf("127.0.0.1:%d", nodePorts[i]),
			"-data-dir", nodeDirs[i],
		}
		if i == 0 {
			// Node 0 survives the whole test; its captured request log
			// is where the traced request ID must surface.
			nodes[i], node0Log = startProcCapture(t, shardnodeBin, append(args, "-log-requests")...)
		} else {
			nodes[i] = startProc(t, shardnodeBin, args...)
		}
	}
	for _, p := range nodePorts {
		waitReady(t, fmt.Sprintf("127.0.0.1:%d", p))
	}

	topo := struct {
		Shards []struct {
			Primary string `json:"primary"`
		} `json:"shards"`
	}{}
	for _, p := range nodePorts {
		topo.Shards = append(topo.Shards, struct {
			Primary string `json:"primary"`
		}{Primary: fmt.Sprintf("http://127.0.0.1:%d", p)})
	}
	raw, err := json.Marshal(topo)
	if err != nil {
		t.Fatal(err)
	}
	nodesFile := filepath.Join(workDir, "nodes.json")
	if err := os.WriteFile(nodesFile, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Routing server over the nodes, plus a single-process twin.
	routerAddr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	localAddr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	startProc(t, ragserverBin, "-addr", routerAddr, "-cluster", nodesFile,
		"-probe-interval", "200ms", "-resync-interval", "200ms")
	startProc(t, ragserverBin, "-addr", localAddr, "-shards", "3")
	waitReady(t, routerAddr)
	waitReady(t, localAddr)

	corpus, err := json.Marshal(map[string][]string{"texts": smokeCorpus})
	if err != nil {
		t.Fatal(err)
	}
	postJSON(t, "http://"+routerAddr+"/ingest/bulk", string(corpus))
	postJSON(t, "http://"+localAddr+"/ingest/bulk", string(corpus))

	const query = "how many shopkeepers run a shop"
	_, clusterBody := searchHits(t, routerAddr, query, 4)
	_, singleBody := searchHits(t, localAddr, query, 4)
	if clusterBody != singleBody {
		t.Fatalf("cluster diverged from single process:\n%s\n%s", clusterBody, singleBody)
	}
	if st := getStats(t, routerAddr); !st.Cluster.Enabled || aliveShards(st) != 3 {
		t.Fatalf("expected 3 alive shards: %+v", st)
	}

	// One traced search: the X-Request-ID sent to the router must be
	// echoed back and must reappear in the shard node's request log for
	// the fan-out leg — the cross-process tracing contract.
	const traceID = "trace-cluster-42"
	tracedReq, err := http.NewRequest(http.MethodPost, "http://"+routerAddr+"/search",
		strings.NewReader(fmt.Sprintf(`{"query":%q,"k":4}`, query)))
	if err != nil {
		t.Fatal(err)
	}
	tracedReq.Header.Set("X-Request-ID", traceID)
	tracedResp, err := http.DefaultClient.Do(tracedReq)
	if err != nil {
		t.Fatalf("traced search: %v", err)
	}
	io.Copy(io.Discard, tracedResp.Body)
	tracedResp.Body.Close()
	if tracedResp.StatusCode != http.StatusOK {
		t.Fatalf("traced search: status %d", tracedResp.StatusCode)
	}
	if got := tracedResp.Header.Get("X-Request-ID"); got != traceID {
		t.Fatalf("router did not echo the request ID: got %q, want %q", got, traceID)
	}
	logDeadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(node0Log.String(), "id="+traceID) {
		if time.Now().After(logDeadline) {
			t.Fatalf("request ID %s never surfaced in the shard node's log:\n%s",
				traceID, node0Log.String())
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Scrape /metrics on the router and one shard node. Every /search
	// fans out exactly once (and nothing else observes that stage), so
	// the fan-out histogram count must equal the admitted-search
	// counter; the node must have timed its single-shard probes under
	// the same shared stage family and counted the fan-out requests it
	// served.
	searches := metricValue(t, routerAddr, `search_requests_total`)
	if searches <= 0 {
		t.Fatalf("router search_requests_total = %v, want > 0", searches)
	}
	fanouts := metricValue(t, routerAddr, `stage_duration_seconds_count{stage="shard_fanout"}`)
	if fanouts != searches {
		t.Fatalf("fan-out histogram count %v != search_requests_total %v", fanouts, searches)
	}
	node0Addr := fmt.Sprintf("127.0.0.1:%d", nodePorts[0])
	if probes := metricValue(t, node0Addr, `stage_duration_seconds_count{stage="shard_search"}`); probes <= 0 {
		t.Fatalf("shard node shard_search stage count = %v, want > 0", probes)
	}
	if served := metricValue(t, node0Addr, `http_requests_total{code="200",route="/shard/search"}`); served <= 0 {
		t.Fatalf("shard node /shard/search requests = %v, want > 0", served)
	}

	// Kill one node: search keeps answering from the survivors, the
	// ejection shows in /stats, and results change (a shard is gone).
	nodes[1].kill()
	waitAlive(t, routerAddr, 2)
	hits, degradedBody := searchHits(t, routerAddr, query, 4)
	if hits == 0 {
		t.Fatal("degraded search returned nothing")
	}
	if degradedBody == clusterBody {
		t.Fatal("search unchanged after losing a shard")
	}

	// Restart the node on its data dir: WAL replay + the half-open
	// cycle must restore identical full results.
	nodes[1] = startProc(t, shardnodeBin,
		"-addr", fmt.Sprintf("127.0.0.1:%d", nodePorts[1]),
		"-data-dir", nodeDirs[1])
	waitAlive(t, routerAddr, 3)
	deadline := time.Now().Add(15 * time.Second)
	for {
		_, recoveredBody := searchHits(t, routerAddr, query, 4)
		if recoveredBody == clusterBody {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("search diverged after recovery:\n%s\n%s", recoveredBody, clusterBody)
		}
		time.Sleep(200 * time.Millisecond)
	}
	if st := getStats(t, routerAddr); st.Cluster.Router.DegradedQueries == 0 {
		t.Fatalf("degraded queries not counted: %+v", st)
	}
}
