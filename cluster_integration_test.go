//go:build cluster_integration

// This file ports the CI cluster-smoke shell job into go test: three
// real shardnode processes behind a routing ragserver, asserting
// merged top-k identical to a single-process twin, degraded-but-
// correct search after kill -9, and identical results again after the
// node restarts and recovers from its WAL. The CI job is now a thin
// wrapper around this test:
//
//	go test -tags cluster_integration -run TestClusterKillRecover -v .
//
// It builds the binaries it drives, so it needs a working `go build`
// and free loopback ports — which is why it hides behind the build
// tag instead of running in the default tier-1 suite.
package repro

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// freePort grabs an ephemeral loopback port. The listener is closed
// before the child process binds it — a small race, acceptable for a
// test that owns the machine while it runs.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}

// buildBinaries compiles ragserver and shardnode into dir.
func buildBinaries(t *testing.T, dir string) (ragserver, shardnode string) {
	t.Helper()
	ragserver = filepath.Join(dir, "ragserver")
	shardnode = filepath.Join(dir, "shardnode")
	for bin, pkg := range map[string]string{ragserver: "./cmd/ragserver", shardnode: "./cmd/shardnode"} {
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", pkg, err, out)
		}
	}
	return ragserver, shardnode
}

// proc is one child process under test control.
type proc struct {
	t   *testing.T
	cmd *exec.Cmd
}

func startProc(t *testing.T, bin string, args ...string) *proc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}
	p := &proc{t: t, cmd: cmd}
	t.Cleanup(func() { p.kill() })
	return p
}

// logBuffer is a concurrency-safe sink for a child process's output,
// so the test can grep captured request-log lines while the child is
// still writing them.
type logBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *logBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *logBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// startProcCapture is startProc teeing the child's output into a
// logBuffer as well as the test's stderr.
func startProcCapture(t *testing.T, bin string, args ...string) (*proc, *logBuffer) {
	t.Helper()
	buf := &logBuffer{}
	cmd := exec.Command(bin, args...)
	cmd.Stdout = io.MultiWriter(os.Stderr, buf)
	cmd.Stderr = io.MultiWriter(os.Stderr, buf)
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}
	p := &proc{t: t, cmd: cmd}
	t.Cleanup(func() { p.kill() })
	return p, buf
}

// kill sends SIGKILL — the ungraceful death the smoke is about — and
// reaps the child.
func (p *proc) kill() {
	if p.cmd.Process != nil {
		p.cmd.Process.Kill()
		p.cmd.Wait()
	}
}

func waitReady(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("%s never became ready", addr)
}

func postJSON(t *testing.T, url string, body string) []byte {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, buf.String())
	}
	return buf.Bytes()
}

// clusterStats is the slice of /stats this test asserts on.
type clusterStats struct {
	Cluster struct {
		Enabled bool `json:"enabled"`
		Shards  []struct {
			Alive bool `json:"alive"`
		} `json:"shards"`
		Router struct {
			DegradedQueries uint64 `json:"degraded_queries"`
		} `json:"router"`
	} `json:"cluster"`
}

func getStats(t *testing.T, addr string) clusterStats {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/stats")
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	defer resp.Body.Close()
	var st clusterStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode /stats: %v", err)
	}
	return st
}

func aliveShards(st clusterStats) int {
	n := 0
	for _, sh := range st.Cluster.Shards {
		if sh.Alive {
			n++
		}
	}
	return n
}

func waitAlive(t *testing.T, addr string, want int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if aliveShards(getStats(t, addr)) == want {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("never reached %d alive shards (now %d)", want, aliveShards(getStats(t, addr)))
}

// metricValue scrapes GET /metrics on addr and returns the value of
// the exact series line (name plus rendered label set), failing the
// test when the series is absent.
func metricValue(t *testing.T, addr, series string) float64 {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics on %s: %v", addr, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read /metrics on %s: %v", addr, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics on %s: status %d", addr, resp.StatusCode)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("parse %s on %s: %v (line %q)", series, addr, err, line)
			}
			return v
		}
	}
	t.Fatalf("series %s absent from %s/metrics:\n%s", series, addr, body)
	return 0
}

// searchHits runs one /search and returns the decoded hits plus the
// raw body (for exact cross-server comparison).
func searchHits(t *testing.T, addr, query string, k int) (int, string) {
	t.Helper()
	body := postJSON(t, "http://"+addr+"/search", fmt.Sprintf(`{"query":%q,"k":%d}`, query, k))
	var out struct {
		Hits []json.RawMessage `json:"hits"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decode search: %v", err)
	}
	return len(out.Hits), string(body)
}

var smokeCorpus = []string{
	"The store operates from 9 AM to 5 PM, from Sunday to Saturday.",
	"Employees are entitled to 14 days of paid annual leave per year.",
	"At least three shopkeepers are required to run a shop.",
	"Overtime is paid at one and a half times the hourly rate.",
	"The probation period lasts three months for all new hires.",
	"Annual performance reviews take place every December.",
}

// TestClusterKillRecover is the 3-node kill/recover smoke as a Go
// test: cluster == single-process on the same corpus; kill -9 one
// node → degraded but correct, ejection visible in /stats; restart on
// the same data dir → identical results again.
func TestClusterKillRecover(t *testing.T) {
	workDir := t.TempDir()
	ragserverBin, shardnodeBin := buildBinaries(t, workDir)

	// Three shard nodes, each with its own durable dir.
	nodePorts := make([]int, 3)
	nodeDirs := make([]string, 3)
	nodes := make([]*proc, 3)
	var node0Log *logBuffer
	for i := range nodes {
		nodePorts[i] = freePort(t)
		nodeDirs[i] = filepath.Join(workDir, fmt.Sprintf("shard%d", i))
		args := []string{
			"-addr", fmt.Sprintf("127.0.0.1:%d", nodePorts[i]),
			"-data-dir", nodeDirs[i],
		}
		if i == 0 {
			// Node 0 survives the whole test; its captured request log
			// is where the traced request ID must surface.
			nodes[i], node0Log = startProcCapture(t, shardnodeBin, append(args, "-log-requests")...)
		} else {
			nodes[i] = startProc(t, shardnodeBin, args...)
		}
	}
	for _, p := range nodePorts {
		waitReady(t, fmt.Sprintf("127.0.0.1:%d", p))
	}

	topo := struct {
		Shards []struct {
			Primary string `json:"primary"`
		} `json:"shards"`
	}{}
	for _, p := range nodePorts {
		topo.Shards = append(topo.Shards, struct {
			Primary string `json:"primary"`
		}{Primary: fmt.Sprintf("http://127.0.0.1:%d", p)})
	}
	raw, err := json.Marshal(topo)
	if err != nil {
		t.Fatal(err)
	}
	nodesFile := filepath.Join(workDir, "nodes.json")
	if err := os.WriteFile(nodesFile, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Routing server over the nodes, plus a single-process twin.
	routerAddr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	localAddr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	startProc(t, ragserverBin, "-addr", routerAddr, "-cluster", nodesFile,
		"-probe-interval", "200ms", "-resync-interval", "200ms")
	startProc(t, ragserverBin, "-addr", localAddr, "-shards", "3")
	waitReady(t, routerAddr)
	waitReady(t, localAddr)

	corpus, err := json.Marshal(map[string][]string{"texts": smokeCorpus})
	if err != nil {
		t.Fatal(err)
	}
	postJSON(t, "http://"+routerAddr+"/ingest/bulk", string(corpus))
	postJSON(t, "http://"+localAddr+"/ingest/bulk", string(corpus))

	const query = "how many shopkeepers run a shop"
	_, clusterBody := searchHits(t, routerAddr, query, 4)
	_, singleBody := searchHits(t, localAddr, query, 4)
	if clusterBody != singleBody {
		t.Fatalf("cluster diverged from single process:\n%s\n%s", clusterBody, singleBody)
	}
	if st := getStats(t, routerAddr); !st.Cluster.Enabled || aliveShards(st) != 3 {
		t.Fatalf("expected 3 alive shards: %+v", st)
	}

	// One traced search: the X-Request-ID sent to the router must be
	// echoed back and must reappear in the shard node's request log for
	// the fan-out leg — the cross-process tracing contract.
	const traceID = "trace-cluster-42"
	tracedReq, err := http.NewRequest(http.MethodPost, "http://"+routerAddr+"/search",
		strings.NewReader(fmt.Sprintf(`{"query":%q,"k":4}`, query)))
	if err != nil {
		t.Fatal(err)
	}
	tracedReq.Header.Set("X-Request-ID", traceID)
	tracedResp, err := http.DefaultClient.Do(tracedReq)
	if err != nil {
		t.Fatalf("traced search: %v", err)
	}
	io.Copy(io.Discard, tracedResp.Body)
	tracedResp.Body.Close()
	if tracedResp.StatusCode != http.StatusOK {
		t.Fatalf("traced search: status %d", tracedResp.StatusCode)
	}
	if got := tracedResp.Header.Get("X-Request-ID"); got != traceID {
		t.Fatalf("router did not echo the request ID: got %q, want %q", got, traceID)
	}
	logDeadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(node0Log.String(), "id="+traceID) {
		if time.Now().After(logDeadline) {
			t.Fatalf("request ID %s never surfaced in the shard node's log:\n%s",
				traceID, node0Log.String())
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Scrape /metrics on the router and one shard node. Every /search
	// fans out exactly once (and nothing else observes that stage), so
	// the fan-out histogram count must equal the admitted-search
	// counter; the node must have timed its single-shard probes under
	// the same shared stage family and counted the fan-out requests it
	// served.
	searches := metricValue(t, routerAddr, `search_requests_total`)
	if searches <= 0 {
		t.Fatalf("router search_requests_total = %v, want > 0", searches)
	}
	fanouts := metricValue(t, routerAddr, `stage_duration_seconds_count{stage="shard_fanout"}`)
	if fanouts != searches {
		t.Fatalf("fan-out histogram count %v != search_requests_total %v", fanouts, searches)
	}
	node0Addr := fmt.Sprintf("127.0.0.1:%d", nodePorts[0])
	if probes := metricValue(t, node0Addr, `stage_duration_seconds_count{stage="shard_search"}`); probes <= 0 {
		t.Fatalf("shard node shard_search stage count = %v, want > 0", probes)
	}
	if served := metricValue(t, node0Addr, `http_requests_total{code="200",route="/shard/search"}`); served <= 0 {
		t.Fatalf("shard node /shard/search requests = %v, want > 0", served)
	}

	// Kill one node: search keeps answering from the survivors, the
	// ejection shows in /stats, and results change (a shard is gone).
	nodes[1].kill()
	waitAlive(t, routerAddr, 2)
	hits, degradedBody := searchHits(t, routerAddr, query, 4)
	if hits == 0 {
		t.Fatal("degraded search returned nothing")
	}
	if degradedBody == clusterBody {
		t.Fatal("search unchanged after losing a shard")
	}

	// Restart the node on its data dir: WAL replay + the half-open
	// cycle must restore identical full results.
	nodes[1] = startProc(t, shardnodeBin,
		"-addr", fmt.Sprintf("127.0.0.1:%d", nodePorts[1]),
		"-data-dir", nodeDirs[1])
	waitAlive(t, routerAddr, 3)
	deadline := time.Now().Add(15 * time.Second)
	for {
		_, recoveredBody := searchHits(t, routerAddr, query, 4)
		if recoveredBody == clusterBody {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("search diverged after recovery:\n%s\n%s", recoveredBody, clusterBody)
		}
		time.Sleep(200 * time.Millisecond)
	}
	if st := getStats(t, routerAddr); st.Cluster.Router.DegradedQueries == 0 {
		t.Fatalf("degraded queries not counted: %+v", st)
	}
}

// rebalanceStats is the slice of /stats the rebalance smokes assert
// on: live doc count, ring epoch, and the migration history.
type rebalanceStats struct {
	Docs    int `json:"docs"`
	Cluster struct {
		Shards []struct {
			Alive bool `json:"alive"`
		} `json:"shards"`
		Router struct {
			RingEpoch uint64 `json:"ring_epoch"`
		} `json:"router"`
		Migrations []struct {
			Shard   int    `json:"shard"`
			Target  string `json:"target"`
			Phase   string `json:"phase"`
			Outcome string `json:"outcome"`
			Error   string `json:"error"`
		} `json:"migrations"`
	} `json:"cluster"`
}

func getRebalanceStats(t *testing.T, addr string) rebalanceStats {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/stats")
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	defer resp.Body.Close()
	var st rebalanceStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode /stats: %v", err)
	}
	return st
}

// streamfinal is the last NDJSON frame of a /ingest/stream response.
type streamFinal struct {
	Accepted uint64 `json:"accepted"`
	Indexed  uint64 `json:"indexed"`
	Failed   uint64 `json:"failed"`
	Chunks   uint64 `json:"chunks"`
	Done     bool   `json:"done"`
	Error    string `json:"error"`
}

// rebalanceCluster starts three shard nodes and a routing ragserver
// over them, returning the node procs, their ports, and the router
// address. The caller owns any extra (spare) nodes.
func rebalanceCluster(t *testing.T, workDir, ragserverBin, shardnodeBin string) (nodes []*proc, nodePorts []int, routerAddr string) {
	t.Helper()
	nodePorts = make([]int, 3)
	nodes = make([]*proc, 3)
	for i := range nodes {
		nodePorts[i] = freePort(t)
		nodes[i] = startProc(t, shardnodeBin,
			"-addr", fmt.Sprintf("127.0.0.1:%d", nodePorts[i]),
			"-data-dir", filepath.Join(workDir, fmt.Sprintf("shard%d", i)))
	}
	for _, p := range nodePorts {
		waitReady(t, fmt.Sprintf("127.0.0.1:%d", p))
	}
	topo := struct {
		Shards []struct {
			Primary string `json:"primary"`
		} `json:"shards"`
	}{}
	for _, p := range nodePorts {
		topo.Shards = append(topo.Shards, struct {
			Primary string `json:"primary"`
		}{Primary: fmt.Sprintf("http://127.0.0.1:%d", p)})
	}
	raw, err := json.Marshal(topo)
	if err != nil {
		t.Fatal(err)
	}
	nodesFile := filepath.Join(workDir, "nodes.json")
	if err := os.WriteFile(nodesFile, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	routerAddr = fmt.Sprintf("127.0.0.1:%d", freePort(t))
	startProc(t, ragserverBin, "-addr", routerAddr, "-cluster", nodesFile,
		"-probe-interval", "200ms", "-resync-interval", "200ms")
	waitReady(t, routerAddr)
	return nodes, nodePorts, routerAddr
}

// TestRebalanceLive is the rebalance-smoke CI job: three real shard
// node processes behind a router, 10k documents streaming through
// /ingest/stream, and a POST /admin/rebalance moving a shard onto a
// fresh node mid-ingest. Zero documents may be lost, the retired
// source must be killable without changing a single result byte, and
// the migration must land in the ok counter exactly once.
func TestRebalanceLive(t *testing.T) {
	workDir := t.TempDir()
	ragserverBin, shardnodeBin := buildBinaries(t, workDir)
	nodes, _, routerAddr := rebalanceCluster(t, workDir, ragserverBin, shardnodeBin)

	// The spare node the shard will move onto: running, durable, but
	// absent from nodes.json — the router learns about it only through
	// the rebalance call.
	sparePort := freePort(t)
	spareURL := fmt.Sprintf("http://127.0.0.1:%d", sparePort)
	startProc(t, shardnodeBin,
		"-addr", fmt.Sprintf("127.0.0.1:%d", sparePort),
		"-data-dir", filepath.Join(workDir, "spare"))
	waitReady(t, fmt.Sprintf("127.0.0.1:%d", sparePort))

	// Stream 10k documents. The writer paces lightly so the upload is
	// still in flight when the rebalance starts; the reader drains the
	// NDJSON progress frames and delivers the final done-frame.
	const totalDocs = 10000
	pr, pw := io.Pipe()
	go func() {
		for i := 0; i < totalDocs; i++ {
			line := fmt.Sprintf("{\"text\":\"streaming document %05d about shard rebalancing under live traffic\"}\n", i)
			if _, err := io.WriteString(pw, line); err != nil {
				pw.CloseWithError(err)
				return
			}
			if i%100 == 0 {
				time.Sleep(time.Millisecond)
			}
		}
		pw.Close()
	}()
	finalCh := make(chan streamFinal, 1)
	streamErr := make(chan error, 1)
	go func() {
		resp, err := http.Post("http://"+routerAddr+"/ingest/stream", "application/x-ndjson", pr)
		if err != nil {
			streamErr <- err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			streamErr <- fmt.Errorf("stream status %d: %s", resp.StatusCode, body)
			return
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		var last streamFinal
		for sc.Scan() {
			if len(bytes.TrimSpace(sc.Bytes())) == 0 {
				continue
			}
			last = streamFinal{}
			if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
				streamErr <- fmt.Errorf("bad stream frame %q: %v", sc.Bytes(), err)
				return
			}
		}
		if err := sc.Err(); err != nil {
			streamErr <- err
			return
		}
		finalCh <- last
	}()

	// Wait until ingest is visibly underway, then move shard 1 onto
	// the spare while documents keep flowing.
	deadline := time.Now().Add(60 * time.Second)
	for getRebalanceStats(t, routerAddr).Docs < 1000 {
		select {
		case err := <-streamErr:
			t.Fatalf("stream died before rebalance: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("ingest never reached 1000 docs")
		}
		time.Sleep(10 * time.Millisecond)
	}
	body := postJSON(t, "http://"+routerAddr+"/admin/rebalance",
		fmt.Sprintf(`{"shard":1,"target":%q,"wait":true}`, spareURL))
	var mig struct {
		Outcome string `json:"outcome"`
		Epoch   uint64 `json:"epoch"`
		Target  string `json:"target"`
		Error   string `json:"error"`
	}
	if err := json.Unmarshal(body, &mig); err != nil {
		t.Fatalf("decode rebalance response: %v", err)
	}
	if mig.Outcome != "ok" {
		t.Fatalf("rebalance outcome = %q (error %q), want ok", mig.Outcome, mig.Error)
	}
	if mig.Epoch != 2 || mig.Target != spareURL {
		t.Fatalf("rebalance status = %+v, want epoch 2 onto %s", mig, spareURL)
	}

	// Drain the stream and prove zero loss: every accepted document is
	// indexed, and the cluster's live doc count equals the chunk count
	// the stream acknowledged.
	var final streamFinal
	select {
	case final = <-finalCh:
	case err := <-streamErr:
		t.Fatalf("stream failed: %v", err)
	case <-time.After(120 * time.Second):
		t.Fatal("stream never finished")
	}
	if !final.Done || final.Error != "" {
		t.Fatalf("bad final frame: %+v", final)
	}
	if final.Accepted != totalDocs || final.Indexed != totalDocs || final.Failed != 0 {
		t.Fatalf("stream counters: %+v, want %d accepted and indexed, 0 failed", final, totalDocs)
	}
	if st := getRebalanceStats(t, routerAddr); st.Docs != int(final.Chunks) {
		t.Fatalf("cluster holds %d docs, stream acknowledged %d chunks — documents lost in the move",
			st.Docs, final.Chunks)
	}

	// The retired source must now be dead weight: kill -9 it and every
	// result byte must survive, because shard 1 lives on the spare.
	const query = "streaming document about shard rebalancing"
	hits, before := searchHits(t, routerAddr, query, 10)
	if hits == 0 {
		t.Fatal("search returned nothing after ingest")
	}
	nodes[1].kill()
	if _, after := searchHits(t, routerAddr, query, 10); after != before {
		t.Fatalf("results changed after killing the retired source:\n%s\n%s", after, before)
	}
	if alive := aliveShards(getStats(t, routerAddr)); alive != 3 {
		t.Fatalf("%d alive shards after retiring the source, want 3", alive)
	}

	st := getRebalanceStats(t, routerAddr)
	if st.Cluster.Router.RingEpoch != 2 {
		t.Fatalf("ring epoch = %d, want 2", st.Cluster.Router.RingEpoch)
	}
	if len(st.Cluster.Migrations) == 0 || st.Cluster.Migrations[0].Outcome != "ok" {
		t.Fatalf("migration history: %+v", st.Cluster.Migrations)
	}
	if got := metricValue(t, routerAddr, `migrations_total{outcome="ok"}`); got != 1 {
		t.Fatalf(`migrations_total{outcome="ok"} = %v, want 1`, got)
	}
	if got := metricValue(t, routerAddr, `ring_epoch`); got != 2 {
		t.Fatalf("ring_epoch metric = %v, want 2", got)
	}

	// Dry-run planner still answers over the new ring.
	plan := postJSON(t, "http://"+routerAddr+"/admin/rebalance", `{"dry_run":true}`)
	var planOut struct {
		Epoch  uint64            `json:"epoch"`
		Shards []json.RawMessage `json:"shards"`
		Reason string            `json:"reason"`
	}
	if err := json.Unmarshal(plan, &planOut); err != nil {
		t.Fatalf("decode plan: %v", err)
	}
	if planOut.Epoch != 2 || len(planOut.Shards) != 3 || planOut.Reason == "" {
		t.Fatalf("plan = %s", plan)
	}
}

// TestRebalanceAbort proves the failure half of the contract: a
// migration that cannot finish aborts with the old assignment fully
// intact — same epoch, same results — and a target killed mid-move
// yields either a clean abort or a clean cutover, never a torn ring.
func TestRebalanceAbort(t *testing.T) {
	workDir := t.TempDir()
	ragserverBin, shardnodeBin := buildBinaries(t, workDir)
	_, _, routerAddr := rebalanceCluster(t, workDir, ragserverBin, shardnodeBin)

	corpus, err := json.Marshal(map[string][]string{"texts": smokeCorpus})
	if err != nil {
		t.Fatal(err)
	}
	postJSON(t, "http://"+routerAddr+"/ingest/bulk", string(corpus))
	const query = "how many shopkeepers run a shop"
	_, baseline := searchHits(t, routerAddr, query, 4)

	// A target nobody listens on: the move must start (the orchestrator
	// cannot know yet), fail during seeding, and roll back. An aborted
	// migration is a 200 with outcome "aborted" — the abort path IS the
	// product working — never an HTTP error.
	deadURL := fmt.Sprintf("http://127.0.0.1:%d", freePort(t))
	body := postJSON(t, "http://"+routerAddr+"/admin/rebalance",
		fmt.Sprintf(`{"shard":0,"target":%q,"wait":true}`, deadURL))
	var mig struct {
		Outcome string `json:"outcome"`
		Error   string `json:"error"`
	}
	if err := json.Unmarshal(body, &mig); err != nil {
		t.Fatalf("decode rebalance response: %v", err)
	}
	if mig.Outcome != "aborted" || mig.Error == "" {
		t.Fatalf("rebalance to dead target: %s", body)
	}
	if st := getRebalanceStats(t, routerAddr); st.Cluster.Router.RingEpoch != 1 {
		t.Fatalf("ring epoch moved to %d on an aborted migration", st.Cluster.Router.RingEpoch)
	}
	if _, after := searchHits(t, routerAddr, query, 4); after != baseline {
		t.Fatalf("results changed after aborted migration:\n%s\n%s", after, baseline)
	}
	if got := metricValue(t, routerAddr, `migrations_total{outcome="aborted"}`); got != 1 {
		t.Fatalf(`migrations_total{outcome="aborted"} = %v, want 1`, got)
	}

	// Kill the target while the migration is running. The orchestrator
	// may lose the race either way, but both endings must be clean:
	// "aborted" with the old ring, or "ok" with a fully flipped one.
	sparePort := freePort(t)
	spareURL := fmt.Sprintf("http://127.0.0.1:%d", sparePort)
	spare := startProc(t, shardnodeBin,
		"-addr", fmt.Sprintf("127.0.0.1:%d", sparePort),
		"-data-dir", filepath.Join(workDir, "spare"))
	waitReady(t, fmt.Sprintf("127.0.0.1:%d", sparePort))
	postJSON(t, "http://"+routerAddr+"/admin/rebalance",
		fmt.Sprintf(`{"shard":0,"target":%q}`, spareURL))
	spare.kill()

	outcome := ""
	deadline := time.Now().Add(60 * time.Second)
	for outcome == "" {
		if time.Now().After(deadline) {
			t.Fatal("migration never finished after target kill")
		}
		for _, m := range getRebalanceStats(t, routerAddr).Cluster.Migrations {
			if m.Target == spareURL && m.Outcome != "" {
				outcome = m.Outcome
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	st := getRebalanceStats(t, routerAddr)
	switch outcome {
	case "aborted":
		if st.Cluster.Router.RingEpoch != 1 {
			t.Fatalf("aborted but epoch = %d", st.Cluster.Router.RingEpoch)
		}
		if _, after := searchHits(t, routerAddr, query, 4); after != baseline {
			t.Fatalf("results changed after aborted migration:\n%s\n%s", after, baseline)
		}
	case "ok":
		// The kill landed after cutover: the ring flipped, the new
		// holder died, and the survivors must still answer.
		if st.Cluster.Router.RingEpoch != 2 {
			t.Fatalf("completed but epoch = %d", st.Cluster.Router.RingEpoch)
		}
		if hits, _ := searchHits(t, routerAddr, query, 4); hits == 0 {
			t.Fatal("no results at all after post-cutover target death")
		}
	default:
		t.Fatalf("outcome %q, want aborted or ok", outcome)
	}
	ok := metricValue(t, routerAddr, `migrations_total{outcome="ok"}`)
	aborted := metricValue(t, routerAddr, `migrations_total{outcome="aborted"}`)
	if ok+aborted != 2 {
		t.Fatalf("migrations_total ok=%v aborted=%v, want 2 finished migrations", ok, aborted)
	}
}
