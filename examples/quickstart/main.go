// Quickstart: verify one LLM response against its retrieved context
// with the multi-SLM hallucination detector — the paper's running
// working-hours example in ~40 lines.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	question := "What are the working hours?"
	retrieved := "The store operates from 9 AM to 5 PM, from Sunday to Saturday. " +
		"There should be at least three shopkeepers to run a shop."

	responses := map[string]string{
		"correct": "The working hours are 9 AM to 5 PM, and the store is open from Sunday to Saturday.",
		"partial": "The working hours are 9 AM to 5 PM, and the store is open from Monday to Friday.",
		"wrong":   "The working hours are 9 AM to 9 PM, and you do not need to work on weekends.",
	}

	// The proposed framework: Qwen2 + MiniCPM stand-ins, sentence
	// splitting, per-model z-normalization, harmonic aggregation.
	detector, err := core.NewProposed()
	if err != nil {
		log.Fatal(err)
	}

	// Calibrate the per-model score moments on "previous responses"
	// (paper Eq. 4) — here, the three candidates themselves.
	ctx := context.Background()
	var triples []core.Triple
	for _, r := range responses {
		triples = append(triples, core.Triple{Question: question, Context: retrieved, Response: r})
	}
	if err := detector.Calibrate(ctx, triples); err != nil {
		log.Fatal(err)
	}

	for _, label := range []string{"correct", "partial", "wrong"} {
		verdict, err := detector.Score(ctx, question, retrieved, responses[label])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s score=%.4f\n", label, verdict.Score)
		for _, s := range verdict.Sentences {
			fmt.Printf("         s_ij=%+.3f  %q\n", s.Combined, s.Sentence)
		}
	}
	fmt.Println("\nHigher scores mean better grounding; threshold the score to flag hallucinations.")
}
