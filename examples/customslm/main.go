// customslm: extend the framework with your own verifier model. Any
// type implementing slm.Model — here a tiny keyword-overlap judge and
// a calibrated verifier with a custom profile — can join the checker's
// ensemble, and the per-model z-normalization (Eq. 4) absorbs its
// score scale automatically.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/slm"
	"repro/internal/textproc"
)

// KeywordJudge is a from-scratch slm.Model: it scores a claim by raw
// stemmed-unigram overlap with the context. Crude, biased toward long
// claims — exactly the kind of heterogeneous judge the normalization
// layer exists to absorb.
type KeywordJudge struct{}

// Name implements slm.Model.
func (KeywordJudge) Name() string { return "keyword-judge" }

// YesProbability implements slm.Model.
func (KeywordJudge) YesProbability(ctx context.Context, req slm.VerifyRequest) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if err := req.Validate(); err != nil {
		return 0, err
	}
	claim := textproc.ContentWords(req.Claim)
	evidence := textproc.ContentWords(req.Context)
	// Squash into (0,1) with a floor so downstream math never sees 0.
	p := 0.02 + 0.96*textproc.OverlapRatio(claim, evidence)
	return p, nil
}

func main() {
	// A custom calibrated profile: blunter and noisier than the
	// built-ins, as if simulating an even smaller checkpoint.
	tiny, err := slm.NewCalibrated(slm.Profile{
		Name: "tiny-350m", Sharpness: 1.6, Bias: 0.1,
		NoiseAmp: 1.6, WeightJitter: 0.3, DilutionHalfLife: 6,
		OutputScale: 0.5, OutputShift: 0.3,
		QuantityMissRate: 0.3, PolarityMissRate: 0.3, FalseAlarmRate: 0.3,
		SubtletyBlindness: 0.95,
	})
	if err != nil {
		log.Fatal(err)
	}

	detector, err := core.NewDetector("custom-ensemble", core.Config{
		Models:    []slm.Model{slm.NewQwen2(), KeywordJudge{}, tiny},
		Aggregate: core.Harmonic,
	})
	if err != nil {
		log.Fatal(err)
	}

	question := "How many days of annual leave do employees receive?"
	contextText := "Full-time employees are entitled to 14 days of paid annual leave per year. " +
		"A maximum of five unused leave days may be carried over to the next year."
	candidates := []string{
		"Employees receive 14 days of paid annual leave each year.",
		"Employees receive 30 days of paid annual leave each year.",
		"Employees receive 14 days of leave. Unused days cannot be carried over.",
	}

	ctx := context.Background()
	var triples []core.Triple
	for _, r := range candidates {
		triples = append(triples, core.Triple{Question: question, Context: contextText, Response: r})
	}
	if err := detector.Calibrate(ctx, triples); err != nil {
		log.Fatal(err)
	}

	for _, r := range candidates {
		v, err := detector.Score(ctx, question, contextText, r)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("score=%.4f  %q\n", v.Score, r)
		for _, s := range v.Sentences {
			fmt.Printf("    s_ij=%+.3f", s.Combined)
			for _, m := range detector.Models() {
				fmt.Printf("  %s=%.3f", m.Name(), s.Raw[m.Name()])
			}
			fmt.Printf("  %q\n", s.Sentence)
		}
	}
}
