// batchaudit: audit a corpus of (question, context, response) triples
// in bulk and print an operating-point report — the workflow a team
// would run nightly over logged production answers to estimate the
// hallucination rate and pick a deployment threshold.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
)

func main() {
	ctx := context.Background()

	// Logged "production traffic": the synthetic dataset plays the
	// role of QA-labelled response logs.
	set, err := dataset.Generate(777, 60)
	if err != nil {
		log.Fatal(err)
	}
	detector, err := core.NewProposed()
	if err != nil {
		log.Fatal(err)
	}
	var triples []core.Triple
	var labels []dataset.Label
	for _, it := range set.Items {
		for _, r := range it.Responses {
			triples = append(triples, core.Triple{Question: it.Question, Context: it.Context, Response: r.Text})
			labels = append(labels, r.Label)
		}
	}
	if err := detector.Calibrate(ctx, triples); err != nil {
		log.Fatal(err)
	}
	scored, err := detector.BatchScore(ctx, triples, 8)
	if err != nil {
		log.Fatal(err)
	}

	// Build correct-vs-hallucinated samples (partial and wrong both
	// count as hallucinated for a production gate).
	var samples []metrics.Sample
	for i, s := range scored {
		samples = append(samples, metrics.Sample{
			Score:    s.Verdict.Score,
			Positive: labels[i] == dataset.LabelCorrect,
		})
	}

	best, err := metrics.BestF1(samples)
	if err != nil {
		log.Fatal(err)
	}
	conservative, err := metrics.BestPrecisionAtRecall(samples, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	auc, err := metrics.AUC(samples)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("audited %d responses (%d questions)\n", len(scored), len(set.Items))
	fmt.Printf("AUC (correct vs hallucinated): %.3f\n\n", auc)
	fmt.Printf("balanced gate   : %s\n", best)
	fmt.Printf("conservative gate (r ≥ 0.5): %s\n\n", conservative)

	// Show the worst-scoring answers a reviewer should look at first.
	type row struct {
		score float64
		label dataset.Label
		text  string
	}
	rows := make([]row, len(scored))
	for i, s := range scored {
		rows[i] = row{score: s.Verdict.Score, label: labels[i], text: s.Response}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].score < rows[j].score })
	fmt.Println("10 most suspicious responses:")
	for _, r := range rows[:10] {
		fmt.Printf("  %.3f  [%s]  %.70s...\n", r.score, r.label, r.text)
	}
}
