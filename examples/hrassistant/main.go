// hrassistant: the full Fig. 2 flow as an interactive demo. The
// synthetic employee handbook is chunked into a vector database, a
// grounded generator answers HR questions from retrieved context, a
// fault injector produces a hallucinating twin, and the detection
// framework gates both — showing the verified system accepting the
// grounded answers and flagging the hallucinated ones.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rag"
	"repro/internal/vecdb"
)

func main() {
	ctx := context.Background()

	// 1. Build the handbook corpus and the vector database.
	set, err := dataset.Default()
	if err != nil {
		log.Fatal(err)
	}
	db, err := vecdb.NewDefault(256)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := db.AddAll(set.Contexts()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d handbook passages\n", db.Len())

	// 2. Build and calibrate the detector on the dataset's responses.
	detector, err := core.NewProposed()
	if err != nil {
		log.Fatal(err)
	}
	var triples []core.Triple
	for _, it := range set.Items {
		for _, r := range it.Responses {
			triples = append(triples, core.Triple{Question: it.Question, Context: it.Context, Response: r.Text})
		}
	}
	if err := detector.Calibrate(ctx, triples); err != nil {
		log.Fatal(err)
	}

	// 3. Two pipelines sharing the database and detector: one grounded,
	// one that hallucinates on purpose.
	const threshold = 3.55
	grounded, err := rag.NewPipeline(rag.PipelineConfig{
		DB: db, TopK: 2,
		Generator: rag.ExtractiveGenerator{MaxSentences: 2},
		Detector:  detector, Threshold: threshold,
	})
	if err != nil {
		log.Fatal(err)
	}
	liar, err := rag.NewFaultInjector(rag.ExtractiveGenerator{MaxSentences: 2}, rag.FaultAll, 42)
	if err != nil {
		log.Fatal(err)
	}
	hallucinating, err := rag.NewPipeline(rag.PipelineConfig{
		DB: db, TopK: 2, Generator: liar, Detector: detector, Threshold: threshold,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Ask a few handbook questions through both.
	questions := []string{
		set.Items[0].Question,  // working hours
		set.Items[1].Question,  // probation
		set.Items[2].Question,  // annual leave
		set.Items[8].Question,  // email policy
		set.Items[10].Question, // personal devices
	}
	var acceptedGrounded, acceptedHallucinated int
	for _, q := range questions {
		g, err := grounded.Ask(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		h, err := hallucinating.Ask(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nQ: %s\n", q)
		fmt.Printf("  grounded     score=%.3f trusted=%-5v  %q\n", g.Verdict.Score, g.Trusted, g.Response)
		fmt.Printf("  hallucinated score=%.3f trusted=%-5v  %q\n", h.Verdict.Score, h.Trusted, h.Response)
		if g.Trusted {
			acceptedGrounded++
		}
		if h.Trusted {
			acceptedHallucinated++
		}
	}
	fmt.Printf("\naccepted %d/%d grounded and %d/%d hallucinated answers at threshold %.1f\n",
		acceptedGrounded, len(questions), acceptedHallucinated, len(questions), threshold)
}
