// Command tailbench measures what hedged reads buy at the tail. It
// builds an in-process cluster — shards × (primary + replica) real
// stores behind chaos-wrapped local backends — arms a deterministic
// latency spike on every primary (every Nth search stalls, modeling
// the occasional GC pause or noisy neighbor that tail-latency
// literature hedges against), then runs the same query stream twice
// through a cluster.Router: once with resilience disabled, once with
// hedging armed. Because the spike is counter-based, both runs hit
// identical stalls, so the p50/p95/p99 delta isolates the hedging
// policy itself rather than scheduler luck.
//
// Results merge into a JSON file (-out BENCH_tail.json) under a
// "full" or "smoke" section, so the committed benchmark and the CI
// smoke gate share one artifact. -check exits non-zero unless the
// hedged p99 stays at or below the unhedged p99 — a
// machine-independent assertion (both runs share the machine), which
// is what CI gates on.
//
// Usage:
//
//	tailbench [-smoke] [-check] [-out BENCH_tail.json]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/clustertest"
	"repro/internal/serve"
	"repro/internal/vecdb"
)

const dim = 64

// params fixes one benchmark configuration. Smoke mode shrinks the
// stream and the stall so the CI gate finishes in a couple of
// seconds; the spike *rate* stays the same so the tail shape matches
// the full run.
type params struct {
	Shards       int   `json:"shards"`
	Docs         int   `json:"docs"`
	Queries      int   `json:"queries"`
	TopK         int   `json:"topk"`
	SpikeEvery   int   `json:"spike_every"`
	SpikeMs      int64 `json:"spike_ms"`
	HedgeAfterMs int64 `json:"hedge_after_ms"`
}

func fullParams() params {
	return params{Shards: 4, Docs: 400, Queries: 2000, TopK: 5, SpikeEvery: 20, SpikeMs: 40, HedgeAfterMs: 5}
}

func smokeParams() params {
	return params{Shards: 4, Docs: 120, Queries: 300, TopK: 5, SpikeEvery: 20, SpikeMs: 25, HedgeAfterMs: 5}
}

// percentiles is one run's latency summary in milliseconds.
type percentiles struct {
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

// runResult is one pass over the query stream.
type runResult struct {
	Hedging   bool        `json:"hedging"`
	Queries   int         `json:"queries"`
	Errors    int         `json:"errors"`
	Latency   percentiles `json:"latency"`
	Hedges    uint64      `json:"hedges"`
	HedgeWins uint64      `json:"hedge_wins"`
	Failovers uint64      `json:"failovers"`
	SpikesHit uint64      `json:"spikes_hit"`
}

// section pairs the unhedged and hedged passes for one configuration.
type section struct {
	Params     params    `json:"params"`
	Unhedged   runResult `json:"unhedged"`
	Hedged     runResult `json:"hedged"`
	P99Speedup float64   `json:"p99_speedup"`
}

// benchFile is the merged on-disk artifact: the committed full run
// plus the CI smoke run live side by side.
type benchFile struct {
	Generated string   `json:"generated"`
	Note      string   `json:"note"`
	Full      *section `json:"full,omitempty"`
	Smoke     *section `json:"smoke,omitempty"`
}

// harness is the in-process cluster the two passes share: the stores
// and chaos wrappers persist across runs, the router is rebuilt per
// pass with a different resilience policy.
type harness struct {
	p        params
	shards   []cluster.ShardBackends
	primarys []*clustertest.ChaosBackend
	embed    vecdb.Embedder
	stores   []*serve.ShardedDB
}

func buildHarness(p params) (*harness, error) {
	h := &harness{p: p}
	inner, err := vecdb.NewHashedEmbedder(dim)
	if err != nil {
		return nil, err
	}
	h.embed = inner
	for si := 0; si < p.Shards; si++ {
		var backends []cluster.Backend
		for r := 0; r < 2; r++ {
			st, err := serve.NewShardedDefault(1, dim, 256)
			if err != nil {
				return nil, err
			}
			h.stores = append(h.stores, st)
			lb, err := cluster.NewLocalBackend(fmt.Sprintf("s%d-%c", si, 'a'+r), st)
			if err != nil {
				return nil, err
			}
			ch := clustertest.Wrap(lb)
			if r == 0 {
				h.primarys = append(h.primarys, ch)
			}
			backends = append(backends, ch)
		}
		h.shards = append(h.shards, cluster.ShardBackends{
			Primary:  backends[0],
			Replicas: backends[1:],
		})
	}
	return h, nil
}

func (h *harness) close() {
	for _, st := range h.stores {
		st.Close()
	}
}

// ingest routes p.Docs documents through a plain router so primaries
// and replicas hold identical corpora.
func (h *harness) ingest(ctx context.Context) error {
	router, err := cluster.NewRouter(h.shards, cluster.HealthConfig{ResyncInterval: -1})
	if err != nil {
		return err
	}
	defer router.Close()
	groups := make([][]vecdb.Mutation, h.p.Shards)
	for i := 0; i < h.p.Docs; i++ {
		id := int64(i + 1)
		si := cluster.ShardIndex(id, h.p.Shards)
		groups[si] = append(groups[si], vecdb.Mutation{
			Op: vecdb.OpAdd, ID: id,
			Text: fmt.Sprintf("document %d covers topic %d and subtopic %d", id, i%17, i%5),
		})
	}
	for si, g := range groups {
		if len(g) == 0 {
			continue
		}
		if err := router.Apply(ctx, si, g); err != nil {
			return err
		}
	}
	return nil
}

// run replays the query stream through a fresh router. The spike
// counters reset first so both passes stall on the same query
// indexes.
func (h *harness) run(ctx context.Context, hedging bool) (runResult, error) {
	res := cluster.ResilienceConfig{}
	if hedging {
		res.HedgeAfter = time.Duration(h.p.HedgeAfterMs) * time.Millisecond
	}
	router, err := cluster.NewRouter(h.shards, cluster.HealthConfig{
		ResyncInterval: -1,
		Resilience:     res,
	})
	if err != nil {
		return runResult{}, err
	}
	defer router.Close()

	var spikesBefore uint64
	for _, ch := range h.primarys {
		spikesBefore += ch.Spikes()
		ch.SetSpike(h.p.SpikeEvery, time.Duration(h.p.SpikeMs)*time.Millisecond)
	}

	out := runResult{Hedging: hedging, Queries: h.p.Queries}
	lats := make([]time.Duration, 0, h.p.Queries)
	for i := 0; i < h.p.Queries; i++ {
		vec, err := h.embed.Embed(fmt.Sprintf("which document covers topic %d", i%17))
		if err != nil {
			return runResult{}, err
		}
		qctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		start := time.Now()
		_, err = router.SearchVector(qctx, vec, h.p.TopK, vecdb.Filter{})
		lats = append(lats, time.Since(start))
		cancel()
		if err != nil {
			out.Errors++
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	out.Latency = percentiles{
		P50Ms: pct(lats, 0.50),
		P95Ms: pct(lats, 0.95),
		P99Ms: pct(lats, 0.99),
		MaxMs: pct(lats, 1.00),
	}
	st := router.Stats()
	out.Hedges, out.HedgeWins, out.Failovers = st.Hedges, st.HedgeWins, st.Failovers
	for _, ch := range h.primarys {
		out.SpikesHit += ch.Spikes()
		ch.SetSpike(0, 0)
	}
	out.SpikesHit -= spikesBefore
	return out, nil
}

// pct reads the q-quantile from an ascending latency slice, in ms.
func pct(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx].Microseconds()) / 1000.0
}

// merge folds sec into the existing artifact at path (or a fresh one)
// and writes it back.
func merge(path string, smoke bool, sec *section) error {
	var f benchFile
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &f); err != nil {
			return fmt.Errorf("tailbench: existing %s is not a benchFile: %w", path, err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	f.Generated = time.Now().UTC().Format(time.RFC3339)
	f.Note = "Loaded-cluster tail-latency benchmark: same deterministic spike schedule replayed with hedging off, then on. Produced by cmd/tailbench; CI re-runs the smoke section and gates on hedged p99 <= unhedged p99."
	if smoke {
		f.Smoke = sec
	} else {
		f.Full = sec
	}
	raw, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

func main() {
	var (
		smoke = flag.Bool("smoke", false, "small fast configuration for CI (results land in the artifact's smoke section)")
		check = flag.Bool("check", false, "exit non-zero unless hedged p99 <= unhedged p99")
		out   = flag.String("out", "", "merge results into this JSON artifact (empty = print to stdout only)")
	)
	flag.Parse()
	p := fullParams()
	if *smoke {
		p = smokeParams()
	}
	if err := runMain(p, *smoke, *check, *out); err != nil {
		fmt.Fprintln(os.Stderr, "tailbench:", err)
		os.Exit(1)
	}
}

func runMain(p params, smoke, check bool, out string) error {
	h, err := buildHarness(p)
	if err != nil {
		return err
	}
	defer h.close()
	ctx := context.Background()
	if err := h.ingest(ctx); err != nil {
		return err
	}
	// Warm both code paths (embed cache, first-touch allocations) off
	// the record; run() re-arms the spike counters afterwards.
	if _, err := h.run(ctx, false); err != nil {
		return err
	}

	unhedged, err := h.run(ctx, false)
	if err != nil {
		return err
	}
	hedged, err := h.run(ctx, true)
	if err != nil {
		return err
	}
	sec := &section{Params: p, Unhedged: unhedged, Hedged: hedged}
	if hedged.Latency.P99Ms > 0 {
		sec.P99Speedup = unhedged.Latency.P99Ms / hedged.Latency.P99Ms
	}
	fmt.Printf("shards=%d queries=%d spike=1/%d×%dms hedge_after=%dms\n",
		p.Shards, p.Queries, p.SpikeEvery, p.SpikeMs, p.HedgeAfterMs)
	fmt.Printf("unhedged  p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms (spikes=%d errors=%d)\n",
		unhedged.Latency.P50Ms, unhedged.Latency.P95Ms, unhedged.Latency.P99Ms,
		unhedged.Latency.MaxMs, unhedged.SpikesHit, unhedged.Errors)
	fmt.Printf("hedged    p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms (hedges=%d wins=%d spikes=%d errors=%d)\n",
		hedged.Latency.P50Ms, hedged.Latency.P95Ms, hedged.Latency.P99Ms,
		hedged.Latency.MaxMs, hedged.Hedges, hedged.HedgeWins, hedged.SpikesHit, hedged.Errors)
	fmt.Printf("p99 speedup: %.2fx\n", sec.P99Speedup)
	if out != "" {
		if err := merge(out, smoke, sec); err != nil {
			return err
		}
		fmt.Printf("merged %s section into %s\n", map[bool]string{true: "smoke", false: "full"}[smoke], out)
	}
	if check {
		if unhedged.Errors > 0 || hedged.Errors > 0 {
			return fmt.Errorf("check failed: queries errored (unhedged=%d hedged=%d)", unhedged.Errors, hedged.Errors)
		}
		if hedged.Latency.P99Ms > unhedged.Latency.P99Ms {
			return fmt.Errorf("check failed: hedged p99 %.2fms > unhedged p99 %.2fms",
				hedged.Latency.P99Ms, unhedged.Latency.P99Ms)
		}
		fmt.Printf("check ok: hedged p99 %.2fms <= unhedged p99 %.2fms\n",
			hedged.Latency.P99Ms, unhedged.Latency.P99Ms)
	}
	return nil
}
