// Command experiments regenerates the paper's evaluation tables and
// figures over the synthetic HR dataset. With no flags it runs
// everything; -exp selects one experiment (table1, fig3a, fig3b,
// fig4a, fig4b, fig5a, fig5b, fig6, fig7).
//
// Usage:
//
//	experiments [-exp id] [-n items] [-seed n] [-workers n] [-bins n]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"repro/internal/dataset"
	"repro/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id: all, table1, fig3a, fig3b, fig4a, fig4b, fig5a, fig5b, fig6, fig7, ablations")
		n       = flag.Int("n", dataset.DefaultSize, "number of dataset items")
		seed    = flag.Uint64("seed", 20250612, "dataset generation seed")
		workers = flag.Int("workers", experiments.DefaultWorkers, "parallel scoring workers")
		bins    = flag.Int("bins", 20, "histogram bins for fig6/fig7")
	)
	flag.Parse()
	if err := run(*exp, *n, *seed, *workers, *bins); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(exp string, n int, seed uint64, workers, bins int) error {
	set, err := dataset.Generate(seed, n)
	if err != nil {
		return err
	}
	suite := experiments.NewSuite(set, workers)
	ctx := context.Background()
	want := func(id string) bool { return exp == "all" || exp == id }
	ran := false

	if want("table1") {
		ran = true
		printTable1()
	}
	for _, pair := range []struct {
		id       string
		contrast dataset.Label
	}{
		{"fig3a", dataset.LabelWrong},
		{"fig3b", dataset.LabelPartial},
	} {
		if !want(pair.id) {
			continue
		}
		ran = true
		rows, err := suite.Fig3(ctx, pair.contrast)
		if err != nil {
			return err
		}
		fmt.Printf("== %s ==\n%s\n", pair.id, experiments.FormatFig3(rows))
	}
	for _, pair := range []struct {
		id       string
		contrast dataset.Label
	}{
		{"fig4a", dataset.LabelWrong},
		{"fig4b", dataset.LabelPartial},
	} {
		if !want(pair.id) {
			continue
		}
		ran = true
		rows, err := suite.Fig4(ctx, pair.contrast)
		if err != nil {
			return err
		}
		fmt.Printf("== %s ==\n%s\n", pair.id, experiments.FormatFig4(rows))
	}
	for _, pair := range []struct {
		id       string
		contrast dataset.Label
	}{
		{"fig5a", dataset.LabelWrong},
		{"fig5b", dataset.LabelPartial},
	} {
		if !want(pair.id) {
			continue
		}
		ran = true
		rows, err := suite.Fig5(ctx, pair.contrast)
		if err != nil {
			return err
		}
		fmt.Printf("== %s ==\n%s\n", pair.id, experiments.FormatFig5(rows))
	}
	if want("fig6") {
		ran = true
		proposed, pyes, err := suite.Fig6(ctx, bins)
		if err != nil {
			return err
		}
		fmt.Printf("== fig6 ==\n(a) %s(b) %s\n",
			experiments.FormatDistribution(proposed, 40),
			experiments.FormatDistribution(pyes, 40))
	}
	if want("fig7") {
		ran = true
		geo, har, err := suite.Fig7(ctx, bins)
		if err != nil {
			return err
		}
		fmt.Printf("== fig7 ==\n(a) %s(b) %s\n",
			experiments.FormatDistribution(geo, 40),
			experiments.FormatDistribution(har, 40))
	}
	if want("ablations") {
		ran = true
		if err := runAblations(ctx, suite); err != nil {
			return err
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment id %q", exp)
	}
	return nil
}

// runAblations prints the DESIGN.md §4 studies against the partial
// contrast (the hard case where design choices matter).
func runAblations(ctx context.Context, suite *experiments.Suite) error {
	fmt.Println("== ablations (correct vs partial) ==")
	ens, err := suite.AblationEnsembleSize(ctx, dataset.LabelPartial)
	if err != nil {
		return err
	}
	fmt.Println(experiments.FormatAblation("-- ensemble size --", ens))
	gat, err := suite.AblationGating(ctx, dataset.LabelPartial)
	if err != nil {
		return err
	}
	fmt.Println(experiments.FormatAblation("-- cross-model combiner --", gat))
	norm, err := suite.AblationNormalization(ctx, dataset.LabelPartial)
	if err != nil {
		return err
	}
	fmt.Println(experiments.FormatAblation("-- normalization (Eq. 4) --", norm))
	spl, err := suite.AblationSplitter(ctx, dataset.LabelPartial)
	if err != nil {
		return err
	}
	fmt.Println(experiments.FormatAblation("-- splitter (§IV-A) --", spl))
	topk, err := suite.AblationTopK(ctx, dataset.LabelPartial, []int{1, 3, 5})
	if err != nil {
		return err
	}
	fmt.Println(experiments.FormatAblation("-- retrieval depth --", topk))
	return nil
}

func printTable1() {
	fmt.Println("== table1: contradiction types ==")
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "TYPE\tPROMPT\tGENERATED RESPONSE")
	for _, ex := range dataset.ContradictionExamples() {
		fmt.Fprintf(w, "%s\t%s\t%s\n", ex.Type, wrap(ex.Prompt, 38), wrap(ex.Response, 44))
	}
	w.Flush()
	fmt.Println()
}

// wrap folds long text for the fixed-width table.
func wrap(s string, width int) string {
	words := strings.Fields(s)
	var lines []string
	cur := ""
	for _, w := range words {
		if cur != "" && len(cur)+1+len(w) > width {
			lines = append(lines, cur)
			cur = w
			continue
		}
		if cur == "" {
			cur = w
		} else {
			cur += " " + w
		}
	}
	if cur != "" {
		lines = append(lines, cur)
	}
	return strings.Join(lines, "\\n")
}
