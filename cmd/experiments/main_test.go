package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

// captureRun executes run() with stdout redirected to a pipe and
// returns everything it printed.
func captureRun(t *testing.T, exp string, n int) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(exp, n, 20250612, 2, 10)
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatalf("run(%q, n=%d): %v", exp, n, runErr)
	}
	return string(out)
}

// TestRunTable1 smoke-tests the binary's main path on the cheapest
// experiment: the output must be a well-formed Table I.
func TestRunTable1(t *testing.T) {
	out := captureRun(t, "table1", 16)
	for _, want := range []string{"table1", "TYPE", "PROMPT", "GENERATED RESPONSE"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output missing %q:\n%s", want, out)
		}
	}
}

// TestRunFig3aSmall runs one full evaluation experiment with a tiny
// trial count and asserts the table lists every approach.
func TestRunFig3aSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("scores 5 approaches over the dataset")
	}
	out := captureRun(t, "fig3a", 16)
	for _, want := range []string{"fig3a", "Proposed", "ChatGPT", "P(yes)", "Qwen2", "MiniCPM"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig3a output missing %q:\n%s", want, out)
		}
	}
}

// TestRunUnknownExperiment: an unknown id must be an error, not a
// silent no-op.
func TestRunUnknownExperiment(t *testing.T) {
	if err := run("no-such-experiment", 16, 1, 1, 10); err == nil {
		t.Error("unknown experiment id did not error")
	}
}
