// Command recallbench measures the recall/latency/memory trade-off of
// the vector index configurations the serving layer can run: index kind
// (flat, ivf, hnsw) × quantization (none, int8) × search-breadth knobs
// (nprobe, ef-search, rerank-k).
//
// The corpus is a deterministic Gaussian-mixture point cloud generated
// from internal/rng, so every run on every machine sees the same
// vectors and the same ground truth. Queries are perturbed corpus
// vectors; ground truth is the exact float32 flat scan. For each
// configuration the tool reports recall@k against that ground truth,
// p50/p99 query latency (quantiles over each query's minimum across
// -rounds passes, which absorbs warm-up and scheduler noise), and the
// per-vector memory footprint split into scan working set and total
// residency.
//
// Latency numbers are machine-dependent; ratios against the in-run
// flat/float32 baseline (p99_vs_baseline) are not, which is what the
// -check gate compares against a committed snapshot. Recall and memory
// are exactly reproducible.
//
// Usage:
//
//	recallbench [-n 50000] [-dim 256] [-queries 200] [-k 10] [-rounds 3]
//	            [-smoke] [-out BENCH_vector.json] [-check BENCH_vector.json]
//	            [-min-recall 0.95] [-p99-tol 0.2]
//
// -smoke shrinks the corpus for CI (n=4000) and reads/writes the
// "smoke" section of the output file instead of "full"; the two
// sections coexist in one committed BENCH_vector.json. -out merges the
// run into the file, preserving the other section. -check re-runs the
// sweep and fails (exit 1) if any gated configuration's recall@k drops
// below -min-recall or any configuration's p99-vs-baseline ratio
// regresses more than -p99-tol against the snapshot's same ratio.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"repro/internal/rng"
	"repro/internal/vecdb"
)

// spec is one point in the sweep. Names are stable identifiers: the
// -check gate joins current results to snapshot results by Name.
type spec struct {
	Name     string
	Kind     string // flat | ivf | hnsw
	Quantize vecdb.QuantKind
	RerankK  int
	NList    int
	NProbe   int
	M        int
	EfCons   int
	EfSearch int
	// GateRecall marks configurations whose recall@k must clear
	// -min-recall in -check mode. Deliberately narrower probes (ivf
	// nprobe=8) trade recall for speed and are reported but not gated.
	GateRecall bool
}

// result is one row of the report, JSON-stable.
type result struct {
	Name     string `json:"name"`
	Kind     string `json:"index"`
	Quantize string `json:"quantize"`
	RerankK  int    `json:"rerank_k,omitempty"`
	NProbe   int    `json:"nprobe,omitempty"`
	EfSearch int    `json:"ef_search,omitempty"`
	Gated    bool   `json:"gated,omitempty"`

	RecallAtK float64 `json:"recall_at_k"`
	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`
	// P99VsBaseline is this configuration's p99 divided by the in-run
	// flat/float32 p99 — the machine-independent number the regression
	// gate tracks.
	P99VsBaseline float64 `json:"p99_vs_baseline"`

	ScanBytesPerVec  float64 `json:"scan_bytes_per_vector"`
	TotalBytesPerVec float64 `json:"total_bytes_per_vector"`
	// ScanReduction is baseline scan bytes / this config's scan bytes:
	// how much smaller the per-query working set is than the float path.
	ScanReduction float64 `json:"scan_reduction_x"`

	BuildMillis float64 `json:"build_ms"`
}

// report is one full sweep at one corpus size.
type report struct {
	N       int      `json:"n"`
	Dim     int      `json:"dim"`
	Queries int      `json:"queries"`
	K       int      `json:"k"`
	Rounds  int      `json:"rounds"`
	Configs []result `json:"configs"`
}

// benchFile is the committed BENCH_vector.json shape: the full-size
// acceptance run and the small CI smoke run live side by side so the
// smoke gate always diffs like against like.
type benchFile struct {
	Full  *report `json:"full,omitempty"`
	Smoke *report `json:"smoke,omitempty"`
}

func main() {
	var (
		n       = flag.Int("n", 50000, "corpus size (vectors)")
		dim     = flag.Int("dim", 256, "vector dimensionality")
		queries = flag.Int("queries", 200, "number of benchmark queries")
		k       = flag.Int("k", 10, "top-k depth for recall@k")
		rounds  = flag.Int("rounds", 3, "timing passes; each query keeps its fastest round")
		smoke   = flag.Bool("smoke", false, "CI-sized run (n=4000) targeting the 'smoke' section")
		out     = flag.String("out", "", "merge this run into the given BENCH_vector.json")
		check   = flag.String("check", "", "compare this run against the given snapshot and gate")
		minRec  = flag.Float64("min-recall", 0.95, "recall@k floor for gated configurations in -check mode")
		p99Tol  = flag.Float64("p99-tol", 0.2, "allowed relative growth of p99_vs_baseline in -check mode")
	)
	flag.Parse()
	// Smoke keeps the corpus small but the query count high: p99 over
	// few queries degenerates to the max sample and flakes the gate.
	if *smoke {
		*n, *queries, *rounds = 4000, 200, 3
	}

	rep := runSweep(*n, *dim, *queries, *k, *rounds)
	printTable(rep)

	if *out != "" {
		if err := mergeInto(*out, rep, *smoke); err != nil {
			fmt.Fprintf(os.Stderr, "recallbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s section of %s\n", sectionName(*smoke), *out)
	}
	if *check != "" {
		if err := gate(*check, rep, *smoke, *minRec, *p99Tol); err != nil {
			fmt.Fprintf(os.Stderr, "recallbench: GATE FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("gate OK against %s (%s section): recall >= %.2f, p99 ratio drift <= %.0f%%\n",
			*check, sectionName(*smoke), *minRec, *p99Tol*100)
	}
}

func sectionName(smoke bool) string {
	if smoke {
		return "smoke"
	}
	return "full"
}

// sweep returns the fixed configuration grid for a corpus of size n.
func sweep(n, k int) []spec {
	nlist := 128
	if n < nlist*32 {
		nlist = n / 32
		if nlist < 8 {
			nlist = 8
		}
	}
	np := func(p int) int {
		if p > nlist {
			return nlist
		}
		return p
	}
	return []spec{
		{Name: "flat-float", Kind: "flat", Quantize: vecdb.QuantNone},
		{Name: "flat-int8-rk", Kind: "flat", Quantize: vecdb.QuantInt8, RerankK: k},
		{Name: "flat-int8-r4k", Kind: "flat", Quantize: vecdb.QuantInt8, RerankK: 4 * k, GateRecall: true},
		{Name: "ivf-float-p8", Kind: "ivf", Quantize: vecdb.QuantNone, NList: nlist, NProbe: np(8)},
		{Name: "ivf-int8-p8", Kind: "ivf", Quantize: vecdb.QuantInt8, RerankK: 4 * k, NList: nlist, NProbe: np(8)},
		{Name: "ivf-int8-p16", Kind: "ivf", Quantize: vecdb.QuantInt8, RerankK: 4 * k, NList: nlist, NProbe: np(16), GateRecall: true},
		{Name: "hnsw-float-e64", Kind: "hnsw", Quantize: vecdb.QuantNone, M: 16, EfCons: 100, EfSearch: 64},
		{Name: "hnsw-int8-e64", Kind: "hnsw", Quantize: vecdb.QuantInt8, RerankK: 4 * k, M: 16, EfCons: 100, EfSearch: 64, GateRecall: true},
	}
}

func runSweep(n, dim, nq, k, rounds int) *report {
	fmt.Printf("corpus: n=%d dim=%d queries=%d k=%d rounds=%d\n", n, dim, nq, k, rounds)
	corpus := makeCorpus(n, dim)
	qs := makeQueries(corpus, nq)

	rep := &report{N: n, Dim: dim, Queries: nq, K: k, Rounds: rounds}
	var truth [][]int64
	var basePrototype result
	for _, sp := range sweep(n, k) {
		start := time.Now()
		idx, err := build(sp, dim, corpus)
		if err != nil {
			fmt.Fprintf(os.Stderr, "recallbench: build %s: %v\n", sp.Name, err)
			os.Exit(1)
		}
		buildMS := float64(time.Since(start)) / float64(time.Millisecond)
		if truth == nil {
			// First config is the exact flat/float32 scan: its results ARE
			// the ground truth.
			truth = groundTruth(idx, qs, k)
		}
		r := measure(sp, idx, qs, truth, k, rounds)
		r.BuildMillis = round2(buildMS)
		if len(rep.Configs) == 0 {
			basePrototype = r
		}
		r.P99VsBaseline = round3(r.P99Micros / basePrototype.P99Micros)
		r.ScanReduction = round2(basePrototype.ScanBytesPerVec / r.ScanBytesPerVec)
		rep.Configs = append(rep.Configs, r)
		fmt.Printf("  %-16s recall@%d=%.4f p50=%.0fus p99=%.0fus scan=%.0fB/vec build=%.0fms\n",
			sp.Name, k, r.RecallAtK, r.P50Micros, r.P99Micros, r.ScanBytesPerVec, buildMS)
	}
	return rep
}

// makeCorpus draws n vectors from a 64-component Gaussian mixture —
// clustered like real embedding spaces, so IVF/HNSW behave
// realistically rather than degenerating on uniform noise.
func makeCorpus(n, dim int) [][]float32 {
	src := rng.NewFromString("recallbench-corpus-v1")
	centers := 64
	if centers > n/8 && n >= 8 {
		centers = n / 8
	}
	cent := make([][]float64, centers)
	for c := range cent {
		cent[c] = make([]float64, dim)
		for d := range cent[c] {
			cent[c][d] = src.NormFloat64()
		}
	}
	corpus := make([][]float32, n)
	for i := range corpus {
		c := cent[src.Intn(centers)]
		v := make([]float32, dim)
		for d := range v {
			v[d] = float32(c[d] + 0.25*src.NormFloat64())
		}
		corpus[i] = v
	}
	return corpus
}

// makeQueries perturbs evenly spaced corpus vectors: each query has a
// known dense neighbourhood, so recall@k is a meaningful measurement
// rather than noise over near-ties.
func makeQueries(corpus [][]float32, nq int) [][]float32 {
	src := rng.NewFromString("recallbench-queries-v1")
	stride := len(corpus) / nq
	if stride < 1 {
		stride = 1
	}
	qs := make([][]float32, nq)
	for i := range qs {
		base := corpus[(i*stride)%len(corpus)]
		q := make([]float32, len(base))
		for d := range q {
			q[d] = base[d] + float32(0.05*src.NormFloat64())
		}
		qs[i] = q
	}
	return qs
}

func build(sp spec, dim int, corpus [][]float32) (vecdb.Index, error) {
	q := vecdb.QuantConfig{Kind: sp.Quantize, RerankK: sp.RerankK}
	var (
		idx vecdb.Index
		err error
	)
	switch sp.Kind {
	case "flat":
		idx, err = vecdb.NewFlatIndexQ(vecdb.Cosine, dim, q)
	case "ivf":
		ivf, e := vecdb.NewIVFIndexQ(vecdb.Cosine, dim, sp.NList, sp.NProbe, q)
		if e != nil {
			return nil, e
		}
		sample := corpus
		if max := sp.NList * 64; len(sample) > max {
			sample = sample[:max]
		}
		if e := ivf.Train(sample, 0); e != nil {
			return nil, e
		}
		idx = ivf
	case "hnsw":
		idx, err = vecdb.NewHNSWIndexQ(vecdb.Cosine, dim, sp.M, sp.EfCons, sp.EfSearch, q)
	default:
		return nil, fmt.Errorf("unknown kind %q", sp.Kind)
	}
	if err != nil {
		return nil, err
	}
	for i, v := range corpus {
		if err := idx.Add(int64(i), v); err != nil {
			return nil, err
		}
	}
	return idx, nil
}

func groundTruth(exact vecdb.Index, qs [][]float32, k int) [][]int64 {
	truth := make([][]int64, len(qs))
	for i, q := range qs {
		res, err := exact.Search(q, k)
		if err != nil {
			fmt.Fprintf(os.Stderr, "recallbench: ground truth: %v\n", err)
			os.Exit(1)
		}
		ids := make([]int64, len(res))
		for j, r := range res {
			ids[j] = r.ID
		}
		truth[i] = ids
	}
	return truth
}

func measure(sp spec, idx vecdb.Index, qs [][]float32, truth [][]int64, k, rounds int) result {
	r := result{
		Name: sp.Name, Kind: sp.Kind, Quantize: sp.Quantize.String(),
		RerankK: sp.RerankK, NProbe: sp.NProbe, EfSearch: sp.EfSearch,
		Gated: sp.GateRecall,
	}
	// Each query keeps its fastest time across rounds: the per-query
	// minimum strips scheduler spikes, so the p99 of those minimums
	// reflects genuine per-query cost instead of machine noise.
	lat := make([]float64, len(qs))
	for i := range lat {
		lat[i] = math.Inf(1)
	}
	var hits, want int
	for round := 0; round < rounds; round++ {
		hits, want = 0, 0
		for i, q := range qs {
			t0 := time.Now()
			res, err := idx.Search(q, k)
			if d := float64(time.Since(t0)) / float64(time.Microsecond); d < lat[i] {
				lat[i] = d
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "recallbench: search %s: %v\n", sp.Name, err)
				os.Exit(1)
			}
			got := map[int64]bool{}
			for _, h := range res {
				got[h.ID] = true
			}
			for _, id := range truth[i] {
				want++
				if got[id] {
					hits++
				}
			}
		}
	}
	sort.Float64s(lat)
	r.RecallAtK = round4(float64(hits) / float64(want))
	r.P50Micros = round2(quantile(lat, 0.50))
	r.P99Micros = round2(quantile(lat, 0.99))
	if mr, ok := idx.(vecdb.MemoryReporter); ok {
		m := mr.Memory()
		nv := float64(m.Vectors)
		r.ScanBytesPerVec = round2(float64(m.ScanBytes) / nv)
		r.TotalBytesPerVec = round2(float64(m.TotalBytes()) / nv)
	}
	return r
}

// quantile reads the q-quantile from an ascending-sorted slice.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }
func round3(v float64) float64 { return math.Round(v*1000) / 1000 }
func round4(v float64) float64 { return math.Round(v*10000) / 10000 }

func printTable(rep *report) {
	fmt.Printf("\n%-16s %-8s %-9s %10s %10s %10s %12s %12s %8s\n",
		"config", "index", "quantize", "recall@k", "p50(us)", "p99(us)", "scanB/vec", "totalB/vec", "p99/base")
	for _, c := range rep.Configs {
		fmt.Printf("%-16s %-8s %-9s %10.4f %10.1f %10.1f %12.1f %12.1f %8.3f\n",
			c.Name, c.Kind, c.Quantize, c.RecallAtK, c.P50Micros, c.P99Micros,
			c.ScanBytesPerVec, c.TotalBytesPerVec, c.P99VsBaseline)
	}
	fmt.Println()
}

// mergeInto writes rep into the full or smoke section of path, keeping
// the other section intact so one committed file carries both runs.
func mergeInto(path string, rep *report, smoke bool) error {
	var f benchFile
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &f); err != nil {
			return fmt.Errorf("parse existing %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	if smoke {
		f.Smoke = rep
	} else {
		f.Full = rep
	}
	raw, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// gate enforces the committed-snapshot contract: gated configurations
// keep recall@k above the floor, and no configuration's p99 ratio to
// the in-run baseline grows more than p99Tol beyond the snapshot's
// ratio. Ratios — not absolute latencies — cross machines safely.
func gate(path string, rep *report, smoke bool, minRecall, p99Tol float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var f benchFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	snap := f.Full
	if smoke {
		snap = f.Smoke
	}
	if snap == nil {
		return fmt.Errorf("%s has no %s section", path, sectionName(smoke))
	}
	prev := map[string]result{}
	for _, c := range snap.Configs {
		prev[c.Name] = c
	}
	var failures []string
	for _, c := range rep.Configs {
		if c.Gated && c.RecallAtK < minRecall {
			failures = append(failures,
				fmt.Sprintf("%s: recall@%d %.4f below floor %.2f", c.Name, rep.K, c.RecallAtK, minRecall))
		}
		p, ok := prev[c.Name]
		if !ok {
			continue // new configuration: nothing to regress against
		}
		if p.RecallAtK-c.RecallAtK > 0.02 {
			failures = append(failures,
				fmt.Sprintf("%s: recall@%d fell %.4f -> %.4f", c.Name, rep.K, p.RecallAtK, c.RecallAtK))
		}
		// Absolute slack (+0.25) keeps sub-millisecond smoke runs from
		// flaking on scheduler noise; the relative term carries the
		// >20%-regression contract.
		if c.P99VsBaseline > p.P99VsBaseline*(1+p99Tol)+0.25 {
			failures = append(failures,
				fmt.Sprintf("%s: p99/baseline %.3f regressed beyond %.3f*(1+%.2f)",
					c.Name, c.P99VsBaseline, p.P99VsBaseline, p99Tol))
		}
	}
	if len(failures) > 0 {
		for _, m := range failures {
			fmt.Fprintln(os.Stderr, "  "+m)
		}
		return fmt.Errorf("%d check(s) failed", len(failures))
	}
	return nil
}
