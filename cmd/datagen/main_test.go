package main

import (
	"path/filepath"
	"testing"

	"repro/internal/dataset"
)

func TestRunWritesLoadableFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "set.json")
	if err := run(24, 7, path, false); err != nil {
		t.Fatal(err)
	}
	set, err := dataset.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Items) != 24 || set.Seed != 7 {
		t.Errorf("loaded set n=%d seed=%d", len(set.Items), set.Seed)
	}
}

func TestRunRejectsBadN(t *testing.T) {
	if err := run(0, 1, "", false); err == nil {
		t.Error("n=0 accepted")
	}
}
