// Command datagen emits the synthetic HR-handbook evaluation dataset
// (the stand-in for the paper's Lane Crawford data, §V-A) as JSON.
//
// Usage:
//
//	datagen [-n items] [-seed n] [-o file] [-stats]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/splitter"
)

func main() {
	var (
		n     = flag.Int("n", dataset.DefaultSize, "number of question/context sets")
		seed  = flag.Uint64("seed", 20250612, "generation seed")
		out   = flag.String("o", "", "output file (default stdout)")
		stats = flag.Bool("stats", false, "print dataset statistics to stderr")
	)
	flag.Parse()
	if err := run(*n, *seed, *out, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(n int, seed uint64, out string, stats bool) error {
	set, err := dataset.Generate(seed, n)
	if err != nil {
		return err
	}
	if stats {
		printStats(set)
	}
	if out == "" {
		return set.Save(os.Stdout)
	}
	return set.SaveFile(out)
}

func printStats(set *dataset.Set) {
	topics := map[string]int{}
	categories := map[string]int{}
	sentences := 0
	responses := 0
	for _, it := range set.Items {
		topics[it.Topic]++
		categories[it.Category]++
		for _, r := range it.Responses {
			sentences += splitter.Count(r.Text)
			responses++
		}
	}
	fmt.Fprintf(os.Stderr, "items: %d  responses: %d  avg sentences/response: %.2f\n",
		len(set.Items), responses, float64(sentences)/float64(responses))
	fmt.Fprintf(os.Stderr, "topics (%d):\n", len(topics))
	for t, c := range topics {
		fmt.Fprintf(os.Stderr, "  %-20s %d\n", t, c)
	}
	for c, n := range categories {
		fmt.Fprintf(os.Stderr, "category %-12s %d\n", c, n)
	}
}
