package main

import "testing"

func TestParseMean(t *testing.T) {
	for _, name := range []string{"harmonic", "arithmetic", "geometric", "max", "min"} {
		m, err := parseMean(name)
		if err != nil {
			t.Errorf("parseMean(%q): %v", name, err)
		}
		if m.String() != name {
			t.Errorf("parseMean(%q) = %s", name, m)
		}
	}
	if _, err := parseMean("median"); err == nil {
		t.Error("unknown mean accepted")
	}
}

func TestRunSingleTriple(t *testing.T) {
	contextText := "The store operates from 9 AM to 5 PM, from Sunday to Saturday."
	// A wrong response must be flagged (exit code 2) at a mid-range
	// threshold.
	code, err := run("What are the working hours?", contextText,
		"The working hours are 9 AM to 9 PM. You do not need to work on weekends.",
		"", 3.0, false, "harmonic")
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Errorf("wrong response exit code = %d, want 2", code)
	}
}

func TestRunMissingFlags(t *testing.T) {
	if _, err := run("", "", "", "", 3.0, false, "harmonic"); err == nil {
		t.Error("missing flags accepted")
	}
	if _, err := run("q", "c", "r", "", 3.0, false, "bogus"); err == nil {
		t.Error("bogus mean accepted")
	}
}
