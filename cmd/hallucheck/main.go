// Command hallucheck scores responses for hallucinations with the
// proposed multi-SLM framework.
//
// Two modes:
//
//	# score one triple from flags
//	hallucheck -q "What are the working hours?" \
//	           -c "The store operates from 9 AM to 5 PM..." \
//	           -r "The working hours are 9 AM to 9 PM."
//
//	# score every response in a dataset JSON (from cmd/datagen)
//	hallucheck -data dataset.json [-threshold 3.2] [-v]
//
// The exit status of single-triple mode is 0 when the response is
// accepted and 2 when it is flagged as hallucinated, so the tool can
// gate scripts.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
)

func main() {
	var (
		question  = flag.String("q", "", "question")
		ctxText   = flag.String("c", "", "retrieved context")
		response  = flag.String("r", "", "response to verify")
		dataPath  = flag.String("data", "", "dataset JSON to score (overrides -q/-c/-r)")
		threshold = flag.Float64("threshold", 3.2, "accept responses with score strictly above this")
		verbose   = flag.Bool("v", false, "print per-sentence detail")
		agg       = flag.String("mean", "harmonic", "sentence aggregation: harmonic, arithmetic, geometric, max, min")
	)
	flag.Parse()
	code, err := run(*question, *ctxText, *response, *dataPath, *threshold, *verbose, *agg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hallucheck:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func parseMean(name string) (core.Mean, error) {
	for _, m := range core.Means() {
		if m.String() == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown mean %q", name)
}

func run(question, ctxText, response, dataPath string, threshold float64, verbose bool, aggName string) (int, error) {
	mean, err := parseMean(aggName)
	if err != nil {
		return 1, err
	}
	detector, err := core.NewProposedWithMean(mean)
	if err != nil {
		return 1, err
	}
	ctx := context.Background()
	if dataPath != "" {
		return runDataset(ctx, detector, dataPath, threshold, verbose)
	}
	if question == "" || ctxText == "" || response == "" {
		return 1, fmt.Errorf("need either -data or all of -q, -c, -r")
	}
	// Single triple: calibrate on the triple itself so the z-scores
	// have moments; scores in this mode are relative, which the help
	// text of -threshold documents.
	if err := detector.Calibrate(ctx, []core.Triple{{Question: question, Context: ctxText, Response: response}}); err != nil {
		return 1, err
	}
	verdict, err := detector.Score(ctx, question, ctxText, response)
	if err != nil {
		return 1, err
	}
	printVerdict(response, verdict, threshold, verbose)
	if verdict.IsCorrect(threshold) {
		return 0, nil
	}
	return 2, nil
}

func runDataset(ctx context.Context, detector *core.Detector, path string, threshold float64, verbose bool) (int, error) {
	set, err := dataset.LoadFile(path)
	if err != nil {
		return 1, err
	}
	var triples []core.Triple
	type ref struct {
		item  int
		label dataset.Label
	}
	var refs []ref
	for _, it := range set.Items {
		for _, r := range it.Responses {
			triples = append(triples, core.Triple{Question: it.Question, Context: it.Context, Response: r.Text})
			refs = append(refs, ref{item: it.ID, label: r.Label})
		}
	}
	if err := detector.Calibrate(ctx, triples); err != nil {
		return 1, err
	}
	scored, err := detector.BatchScore(ctx, triples, 8)
	if err != nil {
		return 1, err
	}
	correctByLabel := map[dataset.Label]int{}
	totalByLabel := map[dataset.Label]int{}
	for i, s := range scored {
		accepted := s.Verdict.IsCorrect(threshold)
		totalByLabel[refs[i].label]++
		if accepted {
			correctByLabel[refs[i].label]++
		}
		if verbose {
			fmt.Printf("item %3d  %-8s score=%.4f accepted=%v\n",
				refs[i].item, refs[i].label, s.Verdict.Score, accepted)
		}
	}
	fmt.Printf("threshold %.3f — acceptance rate by ground-truth label:\n", threshold)
	for _, l := range dataset.Labels() {
		fmt.Printf("  %-8s %3d/%3d accepted\n", l, correctByLabel[l], totalByLabel[l])
	}
	return 0, nil
}

func printVerdict(response string, v core.Verdict, threshold float64, verbose bool) {
	status := "ACCEPTED"
	if !v.IsCorrect(threshold) {
		status = "FLAGGED (possible hallucination)"
	}
	fmt.Printf("score %.4f (threshold %.3f): %s\n", v.Score, threshold, status)
	if verbose {
		for _, s := range v.Sentences {
			fmt.Printf("  s=%+.3f  %q\n", s.Combined, s.Sentence)
			for m, p := range s.Raw {
				fmt.Printf("      %-24s P(yes)=%.4f\n", m, p)
			}
		}
	}
	_ = response
}
