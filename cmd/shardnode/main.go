// Command shardnode serves one shard of a multi-node cluster over the
// compact JSON-over-HTTP shard protocol (see docs/cluster.md). It is
// the unit that moves when a sharded corpus outgrows one process: the
// same per-shard durable state a single ragserver keeps under
// -data-dir — one WAL plus one checkpoint — now owned by its own
// process on its own node, with a routing ragserver (-cluster
// nodes.json) fanning queries out across many of them.
//
// Endpoints:
//
//	POST /shard/search          — vector top-k over this shard
//	POST /shard/apply           — grouped mutations (adds, deletes)
//	GET  /shard/documents/{id}  — point read
//	GET  /shard/stat            — doc count, ID high-water mark, seq, checksum
//	GET  /shard/mutations       — journaled delta since a seq (410 when truncated)
//	POST /shard/resync          — apply a delta shipped by the router's resync manager
//	GET  /shard/snapshot        — full doc set + seq (snapshot-transfer source)
//	POST /shard/snapshot        — adopt a full doc set + seq (snapshot-transfer target)
//	GET  /healthz               — liveness (always 200 once listening)
//	GET  /readyz                — 200 only after WAL recovery completes
//
// The listener comes up before recovery: a router probing /readyz
// keeps routing around the node until its WAL is replayed, then
// half-open recovery returns it to service automatically.
//
// Usage:
//
//	shardnode [-addr :9001] [-data-dir ""] [-dim 256]
//	          [-fsync never|always|interval] [-checkpoint-every 30s]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/storage"
	"repro/internal/vecdb"
)

func main() {
	var (
		addr    = flag.String("addr", ":9001", "listen address")
		dataDir = flag.String("data-dir", "", "directory for this shard's WAL and checkpoints (empty = memory-only)")
		dim     = flag.Int("dim", 256, "embedding width (must match the routing server)")
		fsync   = flag.String("fsync", "never", "WAL fsync policy: never, always, or interval")
		ckEvery = flag.Duration("checkpoint-every", 30*time.Second, "background checkpoint period (negative disables)")
	)
	flag.Parse()
	policy, err := storage.ParseSyncPolicy(*fsync)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shardnode:", err)
		os.Exit(1)
	}

	node := &nodeState{}
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           cluster.NewNodeHandler(node, node.ready),
		ReadHeaderTimeout: 5 * time.Second,
	}
	initDone := make(chan error, 1)
	go func() { initDone <- node.open(*dataDir, *dim, policy, *ckEvery) }()
	log.Printf("shardnode listening on %s", *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpServer.ListenAndServe() }()
	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "shardnode:", err)
		os.Exit(1)
	case err := <-initDone:
		if err != nil {
			fmt.Fprintln(os.Stderr, "shardnode:", err)
			os.Exit(1)
		}
		select {
		case err := <-errCh:
			fmt.Fprintln(os.Stderr, "shardnode:", err)
			os.Exit(1)
		case <-ctx.Done():
		}
	case <-ctx.Done():
	}
	log.Printf("shutting down: draining connections and checkpointing")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpServer.Shutdown(shutdownCtx); err != nil {
		log.Printf("shardnode: http shutdown: %v", err)
	}
	if st := node.store.Load(); st != nil {
		if err := st.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "shardnode: close:", err)
			os.Exit(1)
		}
	}
}

// nodeState adapts an asynchronously-opened one-shard ShardedDB to
// cluster.NodeStore. The node handler gates every data endpoint on
// ready(), so the delegating methods never observe a nil store.
type nodeState struct {
	store atomic.Pointer[serve.ShardedDB]
}

func (n *nodeState) ready() bool { return n.store.Load() != nil }

// open builds the shard store: durable (checkpoint + WAL recovery)
// under dataDir, memory-only without. One shard — the routing layer
// above owns the hash ring.
func (n *nodeState) open(dataDir string, dim int, policy storage.SyncPolicy, ckEvery time.Duration) error {
	var (
		st  *serve.ShardedDB
		err error
	)
	if dataDir != "" {
		st, err = serve.OpenShardedDefault(dataDir, 1, dim, 4096, serve.PersistConfig{
			Fsync:           policy,
			CheckpointEvery: ckEvery,
		})
	} else {
		st, err = serve.NewShardedDefault(1, dim, 4096)
	}
	if err != nil {
		return err
	}
	if dataDir != "" {
		log.Printf("recovered %d docs from %s (replayed %d WAL records)",
			st.Len(), dataDir, st.PersistStats().ReplayedRecords)
	}
	n.store.Store(st)
	log.Printf("ready: serving %d docs (dim=%d durable=%v)", st.Len(), dim, dataDir != "")
	return nil
}

func (n *nodeState) SearchVector(vec []float32, k int) ([]vecdb.Hit, error) {
	return n.store.Load().SearchVector(vec, k)
}

func (n *nodeState) ApplyAll(ms []vecdb.Mutation) error {
	return n.store.Load().ApplyAll(ms)
}

func (n *nodeState) Get(id int64) (vecdb.Document, error) {
	return n.store.Load().Get(id)
}

func (n *nodeState) Len() int { return n.store.Load().Len() }

func (n *nodeState) NextID() int64 { return n.store.Load().NextID() }

func (n *nodeState) Seq() uint64 { return n.store.Load().Seq() }

func (n *nodeState) Checksum() uint64 { return n.store.Load().Checksum() }

func (n *nodeState) MutationsSince(since uint64, max int) ([]vecdb.SeqMutation, error) {
	return n.store.Load().MutationsSince(since, max)
}

func (n *nodeState) ApplyResync(ms []vecdb.SeqMutation) error {
	return n.store.Load().ApplyResync(ms)
}

func (n *nodeState) SnapshotDocs() (uint64, []vecdb.Document, error) {
	return n.store.Load().SnapshotDocs()
}

func (n *nodeState) ApplySnapshot(seq uint64, docs []vecdb.Document) error {
	return n.store.Load().ApplySnapshot(seq, docs)
}

var _ cluster.NodeStore = (*nodeState)(nil)
