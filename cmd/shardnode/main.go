// Command shardnode serves one shard of a multi-node cluster over the
// compact JSON-over-HTTP shard protocol (see docs/cluster.md). It is
// the unit that moves when a sharded corpus outgrows one process: the
// same per-shard durable state a single ragserver keeps under
// -data-dir — one WAL plus one checkpoint — now owned by its own
// process on its own node, with a routing ragserver (-cluster
// nodes.json) fanning queries out across many of them.
//
// Endpoints:
//
//	POST /shard/search          — vector top-k over this shard
//	POST /shard/apply           — grouped mutations (adds, deletes)
//	GET  /shard/documents/{id}  — point read
//	GET  /shard/stat            — doc count, ID high-water mark, seq, checksum
//	GET  /shard/mutations       — journaled delta since a seq (410 when truncated)
//	POST /shard/resync          — apply a delta shipped by the router's resync manager
//	GET  /shard/snapshot        — full doc set + seq (snapshot-transfer source)
//	POST /shard/snapshot        — adopt a full doc set + seq (snapshot-transfer target)
//	GET  /shard/epoch           — ring epoch + serving flag the node holds
//	POST /shard/epoch           — install a newer ring (rebalance cutover / retirement)
//	GET  /healthz               — liveness (always 200 once listening)
//	GET  /readyz                — 200 only after WAL recovery completes
//	GET  /stats                 — node snapshot: docs, seq/checksum, index config, persistence
//	GET  /metrics               — Prometheus text exposition
//	GET  /slo                   — node-side SLO burn rates
//	GET  /debug/traces          — captured span trees (stitched under the router's traceparent)
//
// The listener comes up before recovery: a router probing /readyz
// keeps routing around the node until its WAL is replayed, then
// half-open recovery returns it to service automatically.
//
// Requests run the same telemetry middleware chain as ragserver: the
// router's X-Request-ID hop header is adopted into the node's metrics
// and -log-requests lines (so one user query is traceable across the
// cluster), and X-Deadline-Ms becomes a context deadline so work for
// an upstream that already gave up cancels. /metrics carries the
// node-side stage histograms (shard_search, wal_append, wal_fsync,
// checkpoint). See docs/observability.md.
//
// The node's vector index takes the same -index / -quantize /
// -rerank-k / -nprobe / -ef-search flags as ragserver (validated at
// startup, echoed in GET /stats); a cluster normally runs the same
// configuration on every node. See docs/vector.md.
//
// Usage:
//
//	shardnode [-addr :9001] [-data-dir ""] [-dim 256]
//	          [-index flat|ivf|hnsw] [-quantize none|int8] [-rerank-k 0]
//	          [-nprobe 8] [-ef-search 64]
//	          [-fsync never|always|interval] [-checkpoint-every 30s]
//	          [-trace-capacity 256] [-trace-sample 16] [-slo-latency 200ms]
//	          [-log-requests] [-debug-addr ""]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/vecdb"

	// Registers the profiling handlers on http.DefaultServeMux, which
	// only the optional -debug-addr listener serves.
	_ "net/http/pprof"
)

func main() {
	var (
		addr        = flag.String("addr", ":9001", "listen address")
		dataDir     = flag.String("data-dir", "", "directory for this shard's WAL and checkpoints (empty = memory-only)")
		dim         = flag.Int("dim", 256, "embedding width (must match the routing server)")
		indexKind   = flag.String("index", "flat", "vector index: flat, ivf, or hnsw")
		quantize    = flag.String("quantize", "none", "stored-vector representation: none (float32) or int8 (quantized scan + exact re-rank)")
		rerankK     = flag.Int("rerank-k", 0, "quantized-scan candidates re-scored exactly per query (0 = 4×k)")
		nprobe      = flag.Int("nprobe", 0, "IVF clusters probed per query (0 = default 8)")
		efSearch    = flag.Int("ef-search", 0, "HNSW query beam width (0 = default 64)")
		fsync       = flag.String("fsync", "never", "WAL fsync policy: never, always, or interval")
		ckEvery     = flag.Duration("checkpoint-every", 30*time.Second, "background checkpoint period (negative disables)")
		logRequests = flag.Bool("log-requests", false, "log one structured line per completed request")
		debugAddr   = flag.String("debug-addr", "", "serve net/http/pprof on this address (empty = disabled)")
		traceCap    = flag.Int("trace-capacity", 256, "captured traces retained in memory for /debug/traces")
		traceSample = flag.Int("trace-sample", 16, "keep 1 in N healthy traces (SLO breaches and errors are always kept; negative = breaches/errors only)")
		sloLatency  = flag.Duration("slo-latency", 200*time.Millisecond, "per-request latency objective threshold for node-side SLO tracking")
	)
	flag.Parse()
	policy, err := storage.ParseSyncPolicy(*fsync)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shardnode:", err)
		os.Exit(1)
	}
	indexCfg := serve.IndexConfig{
		Kind:     *indexKind,
		Quantize: *quantize,
		RerankK:  *rerankK,
		NProbe:   *nprobe,
		EfSearch: *efSearch,
	}
	if err := indexCfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "shardnode:", err)
		os.Exit(1)
	}

	reg := telemetry.NewRegistry()
	telemetry.RegisterBuildInfo(reg, "shardnode",
		telemetry.L("index", *indexKind), telemetry.L("quantize", *quantize))
	tracer := telemetry.NewTracer(telemetry.TracerConfig{
		Capacity:    *traceCap,
		SampleEvery: *traceSample,
	})
	tracer.Register(reg)
	slo := telemetry.NewSLO(telemetry.SLOConfig{
		Default: telemetry.SLOObjective{LatencyThreshold: *sloLatency},
		Exempt:  []string{"/healthz", "/readyz"},
	}, reg)
	node := &nodeState{reg: reg}
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           nodeRoutes(node, reg, tracer, slo, *logRequests),
		ReadHeaderTimeout: 5 * time.Second,
	}
	initDone := make(chan error, 1)
	go func() { initDone <- node.open(*dataDir, *dim, indexCfg, policy, *ckEvery) }()
	log.Printf("shardnode listening on %s", *addr)
	if *debugAddr != "" {
		go func() {
			log.Printf("pprof listening on %s", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Printf("shardnode: pprof listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpServer.ListenAndServe() }()
	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "shardnode:", err)
		os.Exit(1)
	case err := <-initDone:
		if err != nil {
			fmt.Fprintln(os.Stderr, "shardnode:", err)
			os.Exit(1)
		}
		select {
		case err := <-errCh:
			fmt.Fprintln(os.Stderr, "shardnode:", err)
			os.Exit(1)
		case <-ctx.Done():
		}
	case <-ctx.Done():
	}
	log.Printf("shutting down: draining connections and checkpointing")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpServer.Shutdown(shutdownCtx); err != nil {
		log.Printf("shardnode: http shutdown: %v", err)
	}
	if st := node.store.Load(); st != nil {
		if err := st.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "shardnode: close:", err)
			os.Exit(1)
		}
	}
}

// nodeRoutes mounts /metrics beside the shard protocol handler and
// wraps everything in the telemetry middleware chain — the same order
// as ragserver, so a request ID minted at the router is adopted here
// and the router's X-Deadline-Ms hop header bounds node-side work.
func nodeRoutes(node *nodeState, reg *telemetry.Registry, tracer *telemetry.Tracer, slo *telemetry.SLO, logRequests bool) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/traces", tracer.Handler(reg))
	mux.Handle("/slo", slo.Handler())
	mux.HandleFunc("/stats", node.handleStats)
	nh := cluster.NewNodeHandler(node, node.ready)
	node.handler = nh
	mux.Handle("/", nh)
	return telemetry.Chain(mux,
		telemetry.RequestID(),
		telemetry.Tracing(tracer, slo, nodeRouteLabel),
		telemetry.Metrics(reg, nodeRouteLabel),
		telemetry.RequestLog(logRequests, nodeRouteLabel, node.shardCount),
		telemetry.Deadline(0),
		telemetry.Recover(reg),
	)
}

// nodeRouteLabel maps shard-protocol paths to bounded metric labels.
func nodeRouteLabel(r *http.Request) string {
	p := r.URL.Path
	if strings.HasPrefix(p, "/shard/documents/") {
		return "/shard/documents/{id}"
	}
	switch p {
	case "/shard/search", "/shard/apply", "/shard/stat", "/shard/mutations",
		"/shard/resync", "/shard/snapshot", "/shard/epoch",
		"/healthz", "/readyz", "/stats", "/metrics",
		"/debug/traces", "/slo":
		return p
	}
	return "other"
}

// nodeState adapts an asynchronously-opened one-shard ShardedDB to
// cluster.NodeStore. The node handler gates every data endpoint on
// ready(), so the delegating methods never observe a nil store.
type nodeState struct {
	store atomic.Pointer[serve.ShardedDB]
	reg   *telemetry.Registry
	// handler is the shard-protocol handler, kept so /stats can echo
	// the ring epoch the node currently holds (set once in nodeRoutes,
	// before the listener starts).
	handler *cluster.NodeHandler
}

func (n *nodeState) ready() bool { return n.store.Load() != nil }

// shardCount feeds the request log: one shard once recovery is done.
func (n *nodeState) shardCount() int {
	if n.ready() {
		return 1
	}
	return 0
}

// open builds the shard store: durable (checkpoint + WAL recovery)
// under dataDir, memory-only without. One shard — the routing layer
// above owns the hash ring.
func (n *nodeState) open(dataDir string, dim int, ic serve.IndexConfig, policy storage.SyncPolicy, ckEvery time.Duration) error {
	var (
		st  *serve.ShardedDB
		err error
	)
	if dataDir != "" {
		st, err = serve.OpenShardedWithIndex(dataDir, 1, dim, 4096, ic, serve.PersistConfig{
			Fsync:           policy,
			CheckpointEvery: ckEvery,
			Telemetry:       n.reg,
		})
	} else {
		st, err = serve.NewShardedWithIndex(1, dim, 4096, ic)
	}
	if err != nil {
		return err
	}
	st.SetTelemetry(n.reg)
	if dataDir != "" {
		log.Printf("recovered %d docs from %s (replayed %d WAL records)",
			st.Len(), dataDir, st.PersistStats().ReplayedRecords)
	}
	n.store.Store(st)
	ec := st.IndexStats().Config
	log.Printf("ready: serving %d docs (dim=%d index=%s quantize=%s durable=%v)",
		st.Len(), dim, ec.Kind, ec.Quantize, dataDir != "")
	return nil
}

// handleStats is the node-local snapshot: document count, replication
// position (seq + checksum), the index configuration in force, and
// durability counters — the single-node analogue of ragserver's much
// larger /stats.
func (n *nodeState) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, `{"error":"GET required"}`, http.StatusMethodNotAllowed)
		return
	}
	st := n.store.Load()
	if st == nil {
		http.Error(w, `{"error":"starting: recovery in progress"}`, http.StatusServiceUnavailable)
		return
	}
	out := struct {
		Docs        int                `json:"docs"`
		Collections map[string]int     `json:"collections,omitempty"`
		Seq         uint64             `json:"seq"`
		Checksum    string             `json:"checksum"`
		Index       serve.IndexStats   `json:"index"`
		Persist     serve.PersistStats `json:"persist"`
		// RingEpoch/Serving echo the ring update the node holds: epoch 0
		// and serving=true until a router pushes one via /shard/epoch.
		RingEpoch uint64 `json:"ring_epoch"`
		Serving   bool   `json:"serving"`
	}{
		Docs:        st.Len(),
		Collections: st.CollectionCounts(),
		Seq:         st.Seq(),
		Checksum:    fmt.Sprintf("%016x", st.Checksum()),
		Index:       st.IndexStats(),
		Persist:     st.PersistStats(),
		Serving:     true,
	}
	if up, ok := n.handler.Ring(); ok {
		out.RingEpoch = up.Epoch
		out.Serving = up.Serving
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		log.Printf("shardnode: encode stats: %v", err)
	}
}

func (n *nodeState) SearchVector(vec []float32, k int) ([]vecdb.Hit, error) {
	return n.store.Load().SearchVector(vec, k)
}

func (n *nodeState) SearchVectorFiltered(vec []float32, k int, f vecdb.Filter) ([]vecdb.Hit, error) {
	return n.store.Load().SearchVectorFiltered(vec, k, f)
}

func (n *nodeState) CollectionCounts() map[string]int {
	return n.store.Load().CollectionCounts()
}

func (n *nodeState) ApplyAll(ms []vecdb.Mutation) error {
	return n.store.Load().ApplyAll(ms)
}

func (n *nodeState) Get(id int64) (vecdb.Document, error) {
	return n.store.Load().Get(id)
}

func (n *nodeState) Len() int { return n.store.Load().Len() }

func (n *nodeState) NextID() int64 { return n.store.Load().NextID() }

func (n *nodeState) Seq() uint64 { return n.store.Load().Seq() }

func (n *nodeState) Checksum() uint64 { return n.store.Load().Checksum() }

func (n *nodeState) MutationsSince(since uint64, max int) ([]vecdb.SeqMutation, error) {
	return n.store.Load().MutationsSince(since, max)
}

func (n *nodeState) ApplyResync(ms []vecdb.SeqMutation) error {
	return n.store.Load().ApplyResync(ms)
}

func (n *nodeState) SnapshotDocs() (uint64, []vecdb.Document, error) {
	return n.store.Load().SnapshotDocs()
}

func (n *nodeState) ApplySnapshot(seq uint64, docs []vecdb.Document) error {
	return n.store.Load().ApplySnapshot(seq, docs)
}

var _ cluster.NodeStore = (*nodeState)(nil)
