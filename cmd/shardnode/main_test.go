package main

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/storage"
	"repro/internal/vecdb"
)

// TestNodeServesAfterOpen: the node handler 503s while the store is
// opening, serves the shard protocol once open, and a reopened node
// recovers its documents from the WAL — the per-node durability
// contract the cluster relies on.
func TestNodeServesAfterOpen(t *testing.T) {
	dir := t.TempDir()
	node := &nodeState{}
	ts := httptest.NewServer(cluster.NewNodeHandler(node, node.ready))
	t.Cleanup(ts.Close)
	b, err := cluster.NewHTTPBackend(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Before open: probe fails, data endpoints refuse.
	if err := b.Probe(ctx); err == nil {
		t.Fatal("probe succeeded before open")
	}
	if _, err := b.Stat(ctx); err == nil {
		t.Fatal("stat succeeded before open")
	}

	if err := node.open(dir, 32, serve.IndexConfig{}, storage.SyncNever, -1); err != nil {
		t.Fatal(err)
	}
	if err := b.Probe(ctx); err != nil {
		t.Fatalf("probe after open: %v", err)
	}
	if err := b.Apply(ctx, []vecdb.Mutation{
		{Op: vecdb.OpAdd, ID: 1, Text: "The store operates from 9 AM to 5 PM."},
		{Op: vecdb.OpAdd, ID: 2, Text: "Overtime is paid at time and a half."},
	}); err != nil {
		t.Fatalf("apply: %v", err)
	}
	st, err := b.Stat(ctx)
	if err != nil || st.Len != 2 || st.NextID != 3 {
		t.Fatalf("stat = %+v, %v", st, err)
	}
	vec, err := node.store.Load().Embedder().Embed("overtime pay")
	if err != nil {
		t.Fatal(err)
	}
	hits, err := b.SearchVector(ctx, vec, 2, vecdb.Filter{})
	if err != nil || len(hits) != 2 {
		t.Fatalf("search = %d hits, %v", len(hits), err)
	}

	// Crash (no checkpoint) and reopen on the same dir: the WAL brings
	// both documents back.
	node.store.Load().CloseNoCheckpoint()
	node2 := &nodeState{}
	if err := node2.open(dir, 32, serve.IndexConfig{}, storage.SyncNever, -1); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node2.store.Load().Close() })
	if got := node2.Len(); got != 2 {
		t.Fatalf("recovered %d docs, want 2", got)
	}
	if node2.NextID() != 3 {
		t.Fatalf("recovered NextID = %d, want 3", node2.NextID())
	}
}

// TestNodeOpenMemoryOnly: without a data dir the node serves from
// memory (the throwaway-bench configuration).
func TestNodeOpenMemoryOnly(t *testing.T) {
	node := &nodeState{}
	if err := node.open("", 16, serve.IndexConfig{}, storage.SyncNever, time.Second); err != nil {
		t.Fatal(err)
	}
	if !node.ready() {
		t.Fatal("node not ready after open")
	}
	if err := node.ApplyAll([]vecdb.Mutation{{Op: vecdb.OpAdd, ID: 7, Text: "x"}}); err != nil {
		t.Fatal(err)
	}
	if node.Len() != 1 || node.NextID() != 8 {
		t.Fatalf("len=%d nextID=%d", node.Len(), node.NextID())
	}
}
