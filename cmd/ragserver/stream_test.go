package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/serve"
)

// postStream sends an NDJSON body to /ingest/stream and decodes every
// response frame.
func postStream(t *testing.T, h http.Handler, body string) (*httptest.ResponseRecorder, []map[string]interface{}) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/ingest/stream", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var frames []map[string]interface{}
	sc := bufio.NewScanner(bytes.NewReader(rec.Body.Bytes()))
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var f map[string]interface{}
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatalf("bad frame %q: %v", sc.Text(), err)
		}
		frames = append(frames, f)
	}
	return rec, frames
}

func TestIngestStreamEndpoint(t *testing.T) {
	s, err := newServer(serve.Config{TopK: 2, Threshold: 3.2}, false)
	if err != nil {
		t.Fatal(err)
	}
	h := s.routes()

	var body strings.Builder
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&body, "{\"text\":\"Document %d explains policy number %d in detail.\"}\n", i, i)
	}
	rec, frames := postStream(t, h, body.String())
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	if len(frames) == 0 {
		t.Fatal("no frames in response")
	}
	final := frames[len(frames)-1]
	if final["done"] != true {
		t.Fatalf("last frame not done: %v", final)
	}
	if _, hasErr := final["error"]; hasErr {
		t.Fatalf("unexpected error in final frame: %v", final)
	}
	if acc := final["accepted"].(float64); acc != 50 {
		t.Fatalf("accepted = %v, want 50", acc)
	}
	if idx := final["indexed"].(float64); idx != 50 {
		t.Fatalf("indexed = %v, want 50", idx)
	}

	// The streamed corpus is immediately searchable.
	rec2 := postJSON(t, h, "/search", map[string]interface{}{"query": "policy number 7", "k": 3})
	if rec2.Code != http.StatusOK {
		t.Fatalf("search after stream: %d %s", rec2.Code, rec2.Body.String())
	}

	// And the totals surface in /stats.
	req := httptest.NewRequest(http.MethodGet, "/stats", nil)
	rec3 := httptest.NewRecorder()
	h.ServeHTTP(rec3, req)
	var snap struct {
		IngestStream struct {
			Streams      uint64 `json:"streams"`
			AcceptedDocs uint64 `json:"accepted_docs"`
		} `json:"ingest_stream"`
	}
	if err := json.Unmarshal(rec3.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.IngestStream.Streams != 1 || snap.IngestStream.AcceptedDocs != 50 {
		t.Fatalf("stats ingest_stream = %+v", snap.IngestStream)
	}
}

func TestIngestStreamEndpointMalformedLines(t *testing.T) {
	s, err := newServer(serve.Config{TopK: 2, Threshold: 3.2}, false)
	if err != nil {
		t.Fatal(err)
	}
	body := "{\"text\":\"good document one\"}\nTHIS IS NOT JSON\n{\"text\":\"good document two\"}\n"
	rec, frames := postStream(t, s.routes(), body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	final := frames[len(frames)-1]
	if final["done"] != true {
		t.Fatalf("last frame not done: %v", final)
	}
	if acc, failed := final["accepted"].(float64), final["failed"].(float64); acc != 2 || failed != 1 {
		t.Fatalf("accepted=%v failed=%v, want 2/1", acc, failed)
	}
}

func TestIngestStreamEndpointMethodAndReadiness(t *testing.T) {
	s, err := newServer(serve.Config{TopK: 2, Threshold: 3.2}, false)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodGet, "/ingest/stream", nil)
	rec := httptest.NewRecorder()
	s.routes().ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d, want 405", rec.Code)
	}

	// A server still recovering answers 503 before reading the body.
	notReady := &server{}
	req = httptest.NewRequest(http.MethodPost, "/ingest/stream", strings.NewReader("{\"text\":\"x\"}\n"))
	rec = httptest.NewRecorder()
	notReady.routes().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("not-ready status = %d, want 503", rec.Code)
	}
}
