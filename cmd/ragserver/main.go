// Command ragserver runs the end-to-end system of Fig. 2 as an HTTP
// service: documents are ingested into the vector database, questions
// are answered with retrieval-augmented generation, and every answer
// is verified by the multi-SLM framework before being returned.
//
// Endpoints (JSON):
//
//	POST /ingest   {"text": "..."}               → {"chunks": n}
//	POST /ask      {"question": "..."}           → answer + verdict
//	POST /verify   {"question","context","response"} → verdict
//	GET  /healthz                                → {"status":"ok","docs":n}
//
// Usage:
//
//	ragserver [-addr :8080] [-topk 3] [-threshold 3.2] [-seed-demo]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rag"
	"repro/internal/vecdb"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		topK      = flag.Int("topk", 3, "retrieved passages per question")
		threshold = flag.Float64("threshold", 3.2, "verification acceptance threshold")
		seedDemo  = flag.Bool("seed-demo", false, "preload the synthetic HR handbook and calibrate on it")
	)
	flag.Parse()
	srv, err := newServer(*topK, *threshold, *seedDemo)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ragserver:", err)
		os.Exit(1)
	}
	log.Printf("ragserver listening on %s (topk=%d threshold=%.2f)", *addr, *topK, *threshold)
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv.routes(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	if err := httpServer.ListenAndServe(); err != nil {
		fmt.Fprintln(os.Stderr, "ragserver:", err)
		os.Exit(1)
	}
}

// server wires the RAG pipeline behind HTTP handlers.
type server struct {
	db       *vecdb.DB
	pipeline *rag.Pipeline
	detector *core.Detector
}

func newServer(topK int, threshold float64, seedDemo bool) (*server, error) {
	db, err := vecdb.NewDefault(256)
	if err != nil {
		return nil, err
	}
	detector, err := core.NewProposed()
	if err != nil {
		return nil, err
	}
	pipeline, err := rag.NewPipeline(rag.PipelineConfig{
		DB:        db,
		TopK:      topK,
		Generator: rag.ExtractiveGenerator{MaxSentences: 2},
		Detector:  detector,
		Threshold: threshold,
	})
	if err != nil {
		return nil, err
	}
	s := &server{db: db, pipeline: pipeline, detector: detector}
	if seedDemo {
		if err := s.seedDemo(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// seedDemo ingests the synthetic handbook and calibrates the
// detector's normalization moments on its responses (Eq. 4's
// "previous responses").
func (s *server) seedDemo() error {
	set, err := dataset.Default()
	if err != nil {
		return err
	}
	for _, ctxText := range set.Contexts() {
		if _, err := s.db.Add(ctxText, nil); err != nil {
			return err
		}
	}
	var triples []core.Triple
	for _, it := range set.Items {
		for _, r := range it.Responses {
			triples = append(triples, core.Triple{
				Question: it.Question, Context: it.Context, Response: r.Text,
			})
		}
	}
	log.Printf("seeding demo: %d passages, calibrating on %d responses", s.db.Len(), len(triples))
	return s.detector.Calibrate(context.Background(), triples)
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/ingest", s.handleIngest)
	mux.HandleFunc("/ask", s.handleAsk)
	mux.HandleFunc("/verify", s.handleVerify)
	return mux
}

// writeJSON sends v with the given status.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("ragserver: encode response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status": "ok",
		"docs":   s.db.Len(),
	})
}

func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req struct {
		Text string `json:"text"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	n, err := s.pipeline.Ingest(req.Text, rag.DefaultChunker())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"chunks": n})
}

// verdictJSON is the wire form of a core.Verdict.
type verdictJSON struct {
	Score     float64        `json:"score"`
	Trusted   bool           `json:"trusted"`
	Sentences []sentenceJSON `json:"sentences"`
}

type sentenceJSON struct {
	Sentence string             `json:"sentence"`
	Combined float64            `json:"combined"`
	Raw      map[string]float64 `json:"raw"`
}

func toVerdictJSON(v core.Verdict, trusted bool) verdictJSON {
	out := verdictJSON{Score: v.Score, Trusted: trusted}
	for _, s := range v.Sentences {
		out.Sentences = append(out.Sentences, sentenceJSON{
			Sentence: s.Sentence, Combined: s.Combined, Raw: s.Raw,
		})
	}
	return out
}

func (s *server) handleAsk(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req struct {
		Question string `json:"question"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Question == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty question"))
		return
	}
	ans, err := s.pipeline.Ask(r.Context(), req.Question)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"question": ans.Question,
		"context":  ans.Context,
		"response": ans.Response,
		"verdict":  toVerdictJSON(ans.Verdict, ans.Trusted),
	})
}

func (s *server) handleVerify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req struct {
		Question string `json:"question"`
		Context  string `json:"context"`
		Response string `json:"response"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	v, err := s.detector.Score(r.Context(), req.Question, req.Context, req.Response)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, toVerdictJSON(v, v.IsCorrect(s.pipeline.Threshold)))
}
