// Command ragserver runs the end-to-end system of Fig. 2 as an HTTP
// service on the internal/serve layer: documents are sharded across
// parallel vector-database shards, questions are answered with
// retrieval-augmented generation, and every answer is verified by the
// multi-SLM framework — with micro-batched verification, embedding and
// verdict caches, and admission control in front of the hot path.
//
// Endpoints (JSON):
//
//	POST /ingest           {"text": "...", "collection": "...", "meta": {...}} → {"chunks": n}
//	POST /ingest/bulk      {"texts": ["...", ...], "collection": "..."}        → {"docs": n, "chunks": m}
//	POST /ingest/stream    NDJSON body (one doc/line) [?collection=t]          → NDJSON progress frames + final {"done":true,...}
//	POST /ask              {"question": "...", "collection": "..."}            → answer + verdict
//	POST /verify           {"question","context","response"[,"collection"]}    → verdict
//	POST /search           {"query","k","collection","filter":{tag:...}}       → {"hits": [...]}
//	GET  /documents/{id}                                                       → stored document
//	DELETE /documents/{id} [?collection=t]                                     → {"deleted": id}
//
// Collections scope documents to tenants: ingest writes land under the
// named collection ("default" when omitted), search/ask retrieval is
// restricted to it, and metadata filters restrict further by exact
// key=value match. When per-tenant limits are configured
// (-tenant-rate / -tenant-burst / -tenant-inflight), each collection
// is admitted through its own token bucket and in-flight quota before
// the global gate — a saturating tenant gets 429s while everyone else
// is untouched — and /stats grows a "tenants" block with per-tenant
// admitted/throttled/in-flight counts. See docs/serving.md.
//
//	POST /admin/checkpoint                            → persistence counters
//	POST /admin/resync                                → cluster stats after one anti-entropy sweep
//	POST /admin/rebalance                             → move a shard to a new node (or dry-run plan)
//	GET  /healthz                                     → {"status":"ok","ready":b}  (liveness)
//	GET  /readyz                                      → 200 | 503                  (recovery + seeding complete)
//	GET  /stats                                       → serving-layer snapshot
//	GET  /metrics                                     → Prometheus text exposition
//	GET  /slo                                         → per-route SLO burn rates + alert states
//	GET  /debug/traces                                → captured span trees + histogram exemplars
//
// /ingest/stream reads NDJSON (one document per line — an object
// {"text":"...","meta":{...}} or a bare string), indexes it through a
// bounded pipeline with credit-based backpressure (an overwhelmed
// server slows the upload via TCP flow control instead of buffering
// unboundedly), and streams progress heartbeat frames back while the
// upload runs. Verification micro-batches and ingest index batches
// are sized adaptively (AIMD on observed occupancy and queue depth)
// within [-max-batch, -max-wait] bounds; -static-batch pins them. See
// docs/ingest.md.
//
// Overloaded requests are shed with 429 Too Many Requests; operations
// on absent document IDs return 404. The listener comes up before
// recovery finishes: /healthz answers immediately, data endpoints
// return 503 until /readyz flips — which also makes /readyz the probe
// target a cluster router uses to route around a recovering node.
//
// With -data-dir the store is durable: every mutation is journaled to
// a per-shard write-ahead log, shards checkpoint in the background and
// on shutdown, and a restarted server recovers its index without
// re-ingesting (see docs/persistence.md).
//
// With -cluster nodes.json the shards live on remote shardnode
// processes instead: documents are hash-routed over HTTP to the nodes
// listed in the topology file, with health-checked fan-out, replica
// failover, and anti-entropy replica resync — a replica that missed
// writes while ejected is streamed the gap from its peers' WALs
// (every -resync-interval, or on POST /admin/resync) before it is
// re-admitted to reads (see docs/cluster.md). -shards and -data-dir
// are ignored in this mode; durability is each node's own WAL.
//
// Every request flows through the telemetry middleware chain: an
// X-Request-ID is adopted (or generated) and echoed, per-route
// counters and latency histograms are recorded, and panics recover to
// 500. GET /metrics renders the registry — request counters, hot-path
// stage histograms (embed, shard fan-out, merge, verify, WAL,
// checkpoint, ingest), per-backend RPC timings in cluster mode — in
// Prometheus text format. -log-requests emits one line per completed
// request; -debug-addr serves net/http/pprof on a separate listener.
// See docs/observability.md.
//
// Usage:
//
// The vector index behind the shards is configurable: -index selects
// flat (exact scan), ivf (clustered probes) or hnsw (graph), -quantize
// int8 switches the scan to int8 codes with an exact float32 re-rank
// of the top -rerank-k candidates, and -nprobe / -ef-search tune the
// recall/latency trade-off. Invalid combinations fail at startup; the
// active configuration (and the index's memory footprint) is echoed in
// /stats under "index". See docs/vector.md.
//
// Usage:
//
//	ragserver [-addr :8080] [-topk 3] [-threshold 3.2] [-seed-demo]
//	          [-shards 4] [-max-batch 16] [-max-wait 2ms] [-static-batch]
//	          [-ingest-pending 1024]
//	          [-max-inflight 64] [-max-queue 256]
//	          [-index flat|ivf|hnsw] [-quantize none|int8] [-rerank-k 0]
//	          [-nprobe 8] [-ef-search 64]
//	          [-data-dir ""] [-fsync never|always|interval]
//	          [-checkpoint-every 30s]
//	          [-cluster nodes.json] [-probe-interval 1s]
//	          [-resync-interval 1s]
//	          [-breaker-threshold 5] [-breaker-cooldown 2s]
//	          [-read-retries 1] [-hedge-after 20ms]
//	          [-trace-capacity 256] [-trace-sample 16] [-slo-latency 500ms]
//	          [-log-requests] [-debug-addr ""]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ingest"
	"repro/internal/serve"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/vecdb"

	// Registers the profiling handlers on http.DefaultServeMux, which
	// only the optional -debug-addr listener serves.
	_ "net/http/pprof"
)

// clusterBootWait bounds how long a routing server waits for its
// shard nodes to become reachable at boot (the ID allocator cannot be
// restored until every shard answers).
const clusterBootWait = 60 * time.Second

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		topK        = flag.Int("topk", 3, "retrieved passages per question")
		threshold   = flag.Float64("threshold", 3.2, "verification acceptance threshold")
		seedDemo    = flag.Bool("seed-demo", false, "preload the synthetic HR handbook and calibrate on it")
		shards      = flag.Int("shards", 0, "vector DB shards (0 = auto, or the stored count when -data-dir exists)")
		maxBatch    = flag.Int("max-batch", 16, "upper bound on verification requests per micro-batch")
		maxWait     = flag.Duration("max-wait", 2*time.Millisecond, "upper bound on the wait to fill a micro-batch")
		staticBatch = flag.Bool("static-batch", false, "pin batches at -max-batch/-max-wait instead of adapting (AIMD)")
		ingestPend  = flag.Int("ingest-pending", 0, "chunk credit pool bounding in-flight streaming-ingest memory (0 = 1024)")
		maxInflight = flag.Int("max-inflight", 64, "max concurrently executing requests")
		maxQueue    = flag.Int("max-queue", 256, "max requests waiting for a slot before shedding (-1 disables queueing)")
		indexKind   = flag.String("index", "flat", "vector index per shard: flat, ivf, or hnsw")
		quantize    = flag.String("quantize", "none", "stored-vector representation: none (float32) or int8 (quantized scan + exact re-rank)")
		rerankK     = flag.Int("rerank-k", 0, "quantized-scan candidates re-scored exactly per query (0 = 4×k)")
		nprobe      = flag.Int("nprobe", 0, "IVF clusters probed per query (0 = default 8)")
		efSearch    = flag.Int("ef-search", 0, "HNSW query beam width (0 = default 64)")
		dataDir     = flag.String("data-dir", "", "directory for per-shard WALs and checkpoints (empty = memory-only)")
		fsync       = flag.String("fsync", "never", "WAL fsync policy: never, always, or interval")
		ckEvery     = flag.Duration("checkpoint-every", 30*time.Second, "background checkpoint period (negative disables)")
		clusterFile = flag.String("cluster", "", "nodes.json topology: route to remote shardnodes instead of in-process shards")
		probeEvery  = flag.Duration("probe-interval", time.Second, "cluster health probe period")
		resyncEvery = flag.Duration("resync-interval", time.Second, "anti-entropy resync sweep period (negative disables background sweeps)")
		logRequests = flag.Bool("log-requests", false, "log one structured line per completed request")
		debugAddr   = flag.String("debug-addr", "", "serve net/http/pprof on this address (empty = disabled)")
		traceCap    = flag.Int("trace-capacity", 256, "captured traces retained in memory for /debug/traces")
		traceSample = flag.Int("trace-sample", 16, "keep 1 in N healthy traces (SLO breaches and errors are always kept; negative = breaches/errors only)")
		sloLatency  = flag.Duration("slo-latency", 500*time.Millisecond, "per-request latency objective threshold (requests slower than this burn the SLO budget)")
		breakThresh = flag.Int("breaker-threshold", 5, "consecutive live-read failures that open a backend's circuit breaker (0 disables breakers)")
		breakCool   = flag.Duration("breaker-cooldown", 2*time.Second, "open-breaker cooldown before a half-open trial request")
		readRetries = flag.Int("read-retries", 1, "retries with jittered backoff for failed idempotent reads (0 disables)")
		hedgeAfter  = flag.Duration("hedge-after", 20*time.Millisecond, "arm a hedged read against another replica after this wait (0 disables hedging)")
		tenantRate  = flag.Float64("tenant-rate", 0, "per-tenant sustained request rate in req/s (0 disables per-tenant rate limiting)")
		tenantBurst = flag.Int("tenant-burst", 0, "per-tenant token-bucket burst depth (0 = no burst above -tenant-rate)")
		tenantInfl  = flag.Int("tenant-inflight", 0, "per-tenant concurrently-executing request cap (0 disables)")
	)
	flag.Parse()
	policy, err := storage.ParseSyncPolicy(*fsync)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ragserver:", err)
		os.Exit(1)
	}
	indexCfg := serve.IndexConfig{
		Kind:     *indexKind,
		Quantize: *quantize,
		RerankK:  *rerankK,
		NProbe:   *nprobe,
		EfSearch: *efSearch,
	}
	if err := indexCfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "ragserver:", err)
		os.Exit(1)
	}
	// The registry is created here, not by serve.New, because /metrics
	// (and the middleware recording into it) must serve from the moment
	// the listener is up — before the possibly long store recovery.
	reg := telemetry.NewRegistry()
	telemetry.RegisterBuildInfo(reg, "ragserver",
		telemetry.L("index", *indexKind), telemetry.L("quantize", *quantize))
	tracer := telemetry.NewTracer(telemetry.TracerConfig{
		Capacity:    *traceCap,
		SampleEvery: *traceSample,
	})
	tracer.Register(reg)
	slo := telemetry.NewSLO(telemetry.SLOConfig{
		Default: telemetry.SLOObjective{LatencyThreshold: *sloLatency},
		Exempt:  []string{"/healthz", "/readyz"},
	}, reg)
	resilience := cluster.ResilienceConfig{
		BreakerThreshold: *breakThresh,
		BreakerCooldown:  *breakCool,
		RetryReads:       *readRetries,
		HedgeAfter:       *hedgeAfter,
	}
	cfg := serve.Config{
		Telemetry:         reg,
		Shards:            *shards,
		TopK:              *topK,
		Threshold:         *threshold,
		MaxBatch:          *maxBatch,
		MaxWait:           *maxWait,
		StaticBatch:       *staticBatch,
		StreamMaxPending:  *ingestPend,
		MaxInFlight:       *maxInflight,
		MaxQueue:          *maxQueue,
		TenantRate:        *tenantRate,
		TenantBurst:       *tenantBurst,
		TenantMaxInFlight: *tenantInfl,
		Index:             indexCfg,
		DataDir:           *dataDir,
		Persist: serve.PersistConfig{
			Fsync:           policy,
			CheckpointEvery: *ckEvery,
		},
	}

	// The listener comes up before the (possibly long) store recovery
	// or cluster attach: /healthz answers immediately, /readyz and the
	// data endpoints flip once init completes.
	srv := &server{reg: reg, tracer: tracer, slo: slo, logRequests: *logRequests}
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv.routes(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	initDone := make(chan error, 1)
	go func() {
		initDone <- srv.init(cfg, *clusterFile, *probeEvery, *resyncEvery, resilience, *seedDemo, *dataDir)
	}()
	log.Printf("ragserver listening on %s", *addr)
	if *debugAddr != "" {
		go func() {
			log.Printf("pprof listening on %s", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Printf("ragserver: pprof listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpServer.ListenAndServe() }()
	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "ragserver:", err)
		os.Exit(1)
	case err := <-initDone:
		if err != nil {
			fmt.Fprintln(os.Stderr, "ragserver:", err)
			os.Exit(1)
		}
		// Init finished; keep serving until a signal or listener error.
		select {
		case err := <-errCh:
			fmt.Fprintln(os.Stderr, "ragserver:", err)
			os.Exit(1)
		case <-ctx.Done():
		}
	case <-ctx.Done():
	}
	// Graceful shutdown: stop accepting traffic, then checkpoint the
	// store so the next boot replays nothing.
	log.Printf("shutting down: draining connections and checkpointing")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpServer.Shutdown(shutdownCtx); err != nil {
		log.Printf("ragserver: http shutdown: %v", err)
	}
	if c := srv.core.Load(); c != nil {
		if err := c.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "ragserver: close:", err)
			os.Exit(1)
		}
	}
}

// server wires the serving layer behind HTTP handlers. core is nil
// until init completes; handlers 503 in the meantime.
type server struct {
	core atomic.Pointer[serve.Server]
	// reg is the process-wide metrics registry: the middleware chain
	// records into it and /metrics renders it, from before init
	// completes.
	reg *telemetry.Registry
	// tracer captures per-request span trees for /debug/traces; slo
	// tracks per-route burn rates for /slo. Both serve from before init
	// completes, like the registry.
	tracer      *telemetry.Tracer
	slo         *telemetry.SLO
	logRequests bool
}

// init builds the serving core (local shards, durable shards, or a
// remote cluster), seeds the demo corpus if asked, and flips /readyz.
func (s *server) init(cfg serve.Config, clusterFile string, probeEvery, resyncEvery time.Duration, resilience cluster.ResilienceConfig, seedDemo bool, dataDir string) error {
	if clusterFile != "" {
		store, err := attachCluster(clusterFile, probeEvery, resyncEvery, resilience, cfg, s.reg)
		if err != nil {
			return err
		}
		cfg.Store = store
		cfg.DataDir = ""
	}
	sv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	if seedDemo {
		if err := seedDemoCorpus(sv); err != nil {
			sv.Close()
			return err
		}
	}
	if dataDir != "" && clusterFile == "" {
		st := sv.Stats().Persist
		log.Printf("recovered %d docs from %s (replayed %d WAL records)",
			sv.Store().Len(), dataDir, st.ReplayedRecords)
	}
	s.core.Store(sv)
	log.Printf("ready (shards=%d topk=%d threshold=%.2f index=%s quantize=%s cluster=%v)",
		sv.Store().Shards(), cfg.TopK, cfg.Threshold,
		sv.Stats().Index.Config.Kind, sv.Stats().Index.Config.Quantize, clusterFile != "")
	return nil
}

// attachCluster loads the topology file and attaches to the shard
// nodes, retrying until every node answers (the global ID allocator
// needs the cluster-wide high-water mark) or clusterBootWait elapses.
func attachCluster(path string, probeEvery, resyncEvery time.Duration, resilience cluster.ResilienceConfig, cfg serve.Config, reg *telemetry.Registry) (*serve.RemoteStore, error) {
	shards, err := cluster.LoadNodes(path)
	if err != nil {
		return nil, err
	}
	router, err := cluster.NewRouter(shards, cluster.HealthConfig{
		Interval:       probeEvery,
		ResyncInterval: resyncEvery,
		Telemetry:      reg,
		Resilience:     resilience,
	})
	if err != nil {
		return nil, err
	}
	// The flags leave Dim and EmbedCacheSize zero; serve.New applies
	// its defaults only after this store is built, so mirror them here
	// — an unclamped zero cache would degenerate the router-side
	// query-embedding LRU to a single entry.
	dim, embedCache := cfg.Dim, cfg.EmbedCacheSize
	if dim <= 0 {
		dim = 256
	}
	if embedCache <= 0 {
		embedCache = 4096
	}
	deadline := time.Now().Add(clusterBootWait)
	for {
		store, err := serve.NewRemoteStore(router, dim, embedCache)
		if err == nil {
			log.Printf("cluster: attached to %d shards from %s (%d docs)", router.Shards(), path, store.Len())
			return store, nil
		}
		if time.Now().After(deadline) {
			router.Close()
			return nil, fmt.Errorf("cluster attach: %w", err)
		}
		log.Printf("cluster: waiting for shard nodes: %v", err)
		time.Sleep(500 * time.Millisecond)
	}
}

// newServer builds a ready server synchronously — the test and
// embedding entrypoint; main uses the async init path instead.
func newServer(cfg serve.Config, seedDemo bool) (*server, error) {
	sv, err := serve.New(cfg)
	if err != nil {
		return nil, err
	}
	if seedDemo {
		if err := seedDemoCorpus(sv); err != nil {
			sv.Close()
			return nil, err
		}
	}
	s := &server{reg: sv.Telemetry()}
	s.tracer = telemetry.NewTracer(telemetry.TracerConfig{})
	s.tracer.Register(s.reg)
	s.slo = telemetry.NewSLO(telemetry.SLOConfig{}, s.reg)
	s.core.Store(sv)
	return s, nil
}

// seedDemoCorpus ingests the synthetic handbook and calibrates the
// detector's normalization moments on its responses (Eq. 4's
// "previous responses"), freezing them so the parallel batch path and
// the verdict cache see a pure scoring function.
func seedDemoCorpus(sv *serve.Server) error {
	set, err := dataset.Default()
	if err != nil {
		return err
	}
	ctx := context.Background()
	// A durable store that recovered documents already holds the demo
	// corpus (or real traffic) — re-ingesting would duplicate it. The
	// calibration below is in-memory state and runs on every boot.
	if sv.Store().Len() == 0 {
		for _, ctxText := range set.Contexts() {
			if _, err := sv.Store().Add(ctxText, nil); err != nil {
				return err
			}
		}
	}
	var triples []core.Triple
	for _, it := range set.Items {
		for _, r := range it.Responses {
			triples = append(triples, core.Triple{
				Question: it.Question, Context: it.Context, Response: r.Text,
			})
		}
	}
	log.Printf("seeding demo: %d passages, calibrating on %d responses", sv.Store().Len(), len(triples))
	return sv.Calibrate(ctx, triples)
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/readyz", s.handleReady)
	mux.HandleFunc("/stats", s.handleStats)
	mux.Handle("/metrics", s.reg.Handler())
	mux.Handle("/debug/traces", s.tracer.Handler(s.reg))
	mux.Handle("/slo", s.slo.Handler())
	mux.HandleFunc("/ingest", s.handleIngest)
	mux.HandleFunc("/ingest/bulk", s.handleIngestBulk)
	mux.HandleFunc("/ingest/stream", s.handleIngestStream)
	mux.HandleFunc("/ask", s.handleAsk)
	mux.HandleFunc("/verify", s.handleVerify)
	mux.HandleFunc("/search", s.handleSearch)
	mux.HandleFunc("/documents/", s.handleDocument)
	mux.HandleFunc("/admin/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("/admin/resync", s.handleResync)
	mux.HandleFunc("/admin/rebalance", s.handleRebalance)
	// Outermost first: the request ID exists before anything records or
	// logs; tracing wraps metrics so histogram exemplars see the trace
	// ID; metrics wrap logging so 504s from the deadline layer and 500s
	// from the recovery layer are counted per route.
	return telemetry.Chain(mux,
		telemetry.RequestID(),
		telemetry.Tracing(s.tracer, s.slo, routeLabel),
		telemetry.Metrics(s.reg, routeLabel),
		telemetry.RequestLog(s.logRequests, routeLabel, s.shardCount),
		telemetry.Deadline(0),
		telemetry.Recover(s.reg),
	)
}

// routeLabel maps a request to a bounded metric label: path patterns,
// never raw paths, so label cardinality cannot grow with traffic.
func routeLabel(r *http.Request) string {
	p := r.URL.Path
	if strings.HasPrefix(p, "/documents/") {
		return "/documents/{id}"
	}
	switch p {
	case "/healthz", "/readyz", "/stats", "/metrics",
		"/debug/traces", "/slo",
		"/ingest", "/ingest/bulk", "/ingest/stream",
		"/ask", "/verify", "/search",
		"/admin/checkpoint", "/admin/resync", "/admin/rebalance":
		return p
	}
	return "other"
}

// shardCount feeds the request log; 0 while init is still running.
func (s *server) shardCount() int {
	if c := s.core.Load(); c != nil {
		return c.Store().Shards()
	}
	return 0
}

// ready returns the serving core, or answers 503 and returns nil
// while init (recovery, cluster attach, demo seeding) is still
// running.
func (s *server) ready(w http.ResponseWriter) *serve.Server {
	c := s.core.Load()
	if c == nil {
		writeError(w, http.StatusServiceUnavailable, errors.New("starting: recovery in progress"))
	}
	return c
}

// writeJSON sends v with the given status.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("ragserver: encode response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// statusFor maps serving-layer errors onto HTTP statuses: shed load is
// 429, expired deadlines and an unreachable cluster are 503, absent
// documents are 404, everything else is the fallback.
func statusFor(err error, fallback int) int {
	switch {
	case errors.Is(err, serve.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	case errors.Is(err, cluster.ErrUnavailable), errors.Is(err, cluster.ErrShardUnavailable):
		return http.StatusServiceUnavailable
	case errors.Is(err, serve.ErrNotFound):
		return http.StatusNotFound
	default:
		return fallback
	}
}

// handleHealth is pure liveness: it answers as soon as the listener
// is up, reporting whether init has finished.
func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	c := s.core.Load()
	out := map[string]interface{}{"status": "ok", "ready": c != nil}
	if c != nil {
		out["docs"] = c.Store().Len()
	}
	writeJSON(w, http.StatusOK, out)
}

// handleReady is readiness: 200 only once recovery (and demo
// seeding, if any) completed — the probe target for load balancers
// and for a cluster router's health checker.
func (s *server) handleReady(w http.ResponseWriter, r *http.Request) {
	if c := s.ready(w); c != nil {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
		return
	}
	c := s.ready(w)
	if c == nil {
		return
	}
	writeJSON(w, http.StatusOK, c.Stats())
}

func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	c := s.ready(w)
	if c == nil {
		return
	}
	var req struct {
		Text       string            `json:"text"`
		Collection string            `json:"collection"`
		Meta       map[string]string `json:"meta"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx := serve.WithTenant(r.Context(), req.Collection)
	var n int
	var err error
	if req.Collection == "" && len(req.Meta) == 0 {
		n, err = c.Ingest(ctx, req.Text)
	} else {
		if req.Text == "" {
			writeError(w, http.StatusBadRequest, fmt.Errorf("empty text"))
			return
		}
		n, err = c.IngestDocs(ctx, []vecdb.Document{{Collection: req.Collection, Text: req.Text, Meta: req.Meta}})
	}
	if err != nil {
		writeError(w, statusFor(err, http.StatusBadRequest), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"chunks": n})
}

func (s *server) handleIngestBulk(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	c := s.ready(w)
	if c == nil {
		return
	}
	var req struct {
		Texts      []string `json:"texts"`
		Collection string   `json:"collection"`
		Docs       []struct {
			Text string            `json:"text"`
			Meta map[string]string `json:"meta"`
		} `json:"docs"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Texts) == 0 && len(req.Docs) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty texts array"))
		return
	}
	ctx := serve.WithTenant(r.Context(), req.Collection)
	var chunks int
	var err error
	ndocs := len(req.Texts) + len(req.Docs)
	if req.Collection == "" && len(req.Docs) == 0 {
		chunks, err = c.IngestBulk(ctx, req.Texts)
	} else {
		docs := make([]vecdb.Document, 0, ndocs)
		for _, t := range req.Texts {
			docs = append(docs, vecdb.Document{Collection: req.Collection, Text: t})
		}
		for _, d := range req.Docs {
			docs = append(docs, vecdb.Document{Collection: req.Collection, Text: d.Text, Meta: d.Meta})
		}
		chunks, err = c.IngestDocs(ctx, docs)
	}
	if err != nil {
		writeError(w, statusFor(err, http.StatusBadRequest), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"docs": ndocs, "chunks": chunks})
}

// streamFrame is one NDJSON line of the /ingest/stream response:
// heartbeat frames carry the live counters; the final frame adds
// done=true and, when the stream aborted, the error.
type streamFrame struct {
	ingest.Stats
	Done  bool   `json:"done,omitempty"`
	Error string `json:"error,omitempty"`
}

// handleIngestStream pipes the request body through the streaming
// ingest pipeline, writing NDJSON progress frames as the upload runs.
// Shedding (429) and cluster-unavailable (503) happen before the
// first frame; after that, errors arrive in the final frame because
// the 200 header is already on the wire. Backpressure needs no code
// here: when the pipeline's credit gate fills, IngestStream stops
// reading r.Body and TCP flow control slows the client.
func (s *server) handleIngestStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	c := s.ready(w)
	if c == nil {
		return
	}
	// Writing a response while the request body is still uploading
	// needs full-duplex HTTP: without it, Go's HTTP/1.x server closes
	// the body on the first response write and the upload dies with
	// "invalid Read on closed Body". Where full duplex is unavailable,
	// degrade to a single final frame instead of killing the stream.
	fullDuplex := http.NewResponseController(w).EnableFullDuplex() == nil
	var (
		mu    sync.Mutex
		wrote bool
	)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	writeFrame := func(f streamFrame) {
		mu.Lock()
		defer mu.Unlock()
		if !wrote {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			wrote = true
		}
		if err := enc.Encode(f); err == nil && flusher != nil {
			flusher.Flush()
		}
	}
	var progress func(ingest.Stats)
	if fullDuplex {
		progress = func(p ingest.Stats) { writeFrame(streamFrame{Stats: p}) }
	}
	collection := r.URL.Query().Get("collection")
	ctx := serve.WithTenant(r.Context(), collection)
	st, err := c.IngestStreamIn(ctx, collection, r.Body, progress)
	mu.Lock()
	headerSent := wrote
	mu.Unlock()
	if err != nil && !headerSent {
		// Nothing on the wire yet — shed/unavailable/bad-stream errors
		// can still use a proper status code.
		writeError(w, statusFor(err, http.StatusBadRequest), err)
		return
	}
	final := streamFrame{Stats: st, Done: true}
	if err != nil {
		final.Error = err.Error()
	}
	writeFrame(final)
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	c := s.ready(w)
	if c == nil {
		return
	}
	var req struct {
		Query      string            `json:"query"`
		K          int               `json:"k"`
		Collection string            `json:"collection"`
		Filter     map[string]string `json:"filter"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Query == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty query"))
		return
	}
	if req.K <= 0 {
		req.K = 3
	}
	ctx := serve.WithTenant(r.Context(), req.Collection)
	f := vecdb.Filter{Collection: req.Collection, Meta: req.Filter}
	hits, err := c.SearchFiltered(ctx, req.Query, req.K, f)
	if err != nil {
		writeError(w, statusFor(err, http.StatusInternalServerError), err)
		return
	}
	type hitJSON struct {
		ID         int64   `json:"id"`
		Score      float64 `json:"score"`
		Text       string  `json:"text"`
		Collection string  `json:"collection,omitempty"`
	}
	out := make([]hitJSON, 0, len(hits))
	for _, h := range hits {
		out = append(out, hitJSON{ID: h.ID, Score: h.Score, Text: h.Text, Collection: h.Collection})
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"hits": out})
}

// handleDocument serves GET and DELETE on /documents/{id}. Absent IDs
// are 404 via the serving layer's typed ErrNotFound.
func (s *server) handleDocument(w http.ResponseWriter, r *http.Request) {
	c := s.ready(w)
	if c == nil {
		return
	}
	idStr := strings.TrimPrefix(r.URL.Path, "/documents/")
	id, err := strconv.ParseInt(idStr, 10, 64)
	if err != nil || id <= 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad document id %q", idStr))
		return
	}
	collection := r.URL.Query().Get("collection")
	ctx := serve.WithTenant(r.Context(), collection)
	switch r.Method {
	case http.MethodGet:
		doc, err := c.GetDocument(ctx, id)
		if err != nil {
			writeError(w, statusFor(err, http.StatusInternalServerError), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"id": doc.ID, "collection": doc.Collection, "text": doc.Text, "meta": doc.Meta,
		})
	case http.MethodDelete:
		var err error
		if collection != "" {
			err = c.DeleteDocumentIn(ctx, collection, id)
		} else {
			err = c.DeleteDocument(ctx, id)
		}
		if err != nil {
			writeError(w, statusFor(err, http.StatusInternalServerError), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]int64{"deleted": id})
	default:
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET or DELETE required"))
	}
}

// handleCheckpoint forces a checkpoint of every dirty shard — the
// operator's knob before a planned restart or shard migration.
func (s *server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	c := s.ready(w)
	if c == nil {
		return
	}
	if err := c.Checkpoint(); err != nil {
		// A memory-only server is the caller's mistake (400); a failing
		// checkpoint on a durable server is a server fault (500).
		status := http.StatusInternalServerError
		if errors.Is(err, serve.ErrNoDataDir) {
			status = http.StatusBadRequest
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, c.Stats().Persist)
}

// handleResync forces one synchronous anti-entropy sweep — the
// operator's knob to repair a just-restarted replica immediately
// instead of waiting for the background resync interval.
func (s *server) handleResync(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	c := s.ready(w)
	if c == nil {
		return
	}
	if err := c.Resync(r.Context()); err != nil {
		// Resync on a non-cluster server is the caller's mistake (400);
		// a repair that failed mid-sweep is reported as a server fault,
		// with the next sweep (or retry) picking it back up.
		status := http.StatusInternalServerError
		if errors.Is(err, serve.ErrNoCluster) {
			status = http.StatusBadRequest
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, c.Stats().Cluster)
}

// handleRebalance moves one shard onto a new node with zero downtime
// (see docs/rebalancing.md). Body:
//
//	{"shard": 1, "target": "http://10.0.0.9:9001"}        start and return
//	{"shard": 1, "target": "...", "wait": true}           block until done
//	{"dry_run": true}                                     planner only
//
// Starting errors map to the caller: 400 for a non-cluster server or
// a bad shard/target, 409 when a migration is already running. A
// migration that starts and later aborts is reported through the
// returned status ("outcome":"aborted") or /stats, not an HTTP error
// — the abort path restoring the old assignment is the operation
// working as designed.
func (s *server) handleRebalance(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	c := s.ready(w)
	if c == nil {
		return
	}
	var req struct {
		Shard  *int   `json:"shard"`
		Target string `json:"target"`
		DryRun bool   `json:"dry_run"`
		Wait   bool   `json:"wait"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.DryRun {
		plan, err := c.PlanRebalance(r.Context())
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, plan)
		return
	}
	if req.Shard == nil || req.Target == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("shard and target are required (or dry_run)"))
		return
	}
	st, err := c.Rebalance(r.Context(), *req.Shard, req.Target, req.Wait)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, cluster.ErrMigrationActive) {
			status = http.StatusConflict
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// verdictJSON is the wire form of a core.Verdict.
type verdictJSON struct {
	Score     float64        `json:"score"`
	Trusted   bool           `json:"trusted"`
	Sentences []sentenceJSON `json:"sentences"`
}

type sentenceJSON struct {
	Sentence string             `json:"sentence"`
	Combined float64            `json:"combined"`
	Raw      map[string]float64 `json:"raw"`
}

func toVerdictJSON(v core.Verdict, trusted bool) verdictJSON {
	out := verdictJSON{Score: v.Score, Trusted: trusted}
	for _, s := range v.Sentences {
		out.Sentences = append(out.Sentences, sentenceJSON{
			Sentence: s.Sentence, Combined: s.Combined, Raw: s.Raw,
		})
	}
	return out
}

func (s *server) handleAsk(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	c := s.ready(w)
	if c == nil {
		return
	}
	var req struct {
		Question   string `json:"question"`
		Collection string `json:"collection"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Question == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty question"))
		return
	}
	ans, err := c.AskIn(serve.WithTenant(r.Context(), req.Collection), req.Collection, req.Question)
	if err != nil {
		writeError(w, statusFor(err, http.StatusInternalServerError), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"question": ans.Question,
		"context":  ans.Context,
		"response": ans.Response,
		"verdict":  toVerdictJSON(ans.Verdict, ans.Trusted),
	})
}

func (s *server) handleVerify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	c := s.ready(w)
	if c == nil {
		return
	}
	var req struct {
		Question   string `json:"question"`
		Context    string `json:"context"`
		Response   string `json:"response"`
		Collection string `json:"collection"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	v, err := c.Verify(serve.WithTenant(r.Context(), req.Collection), req.Question, req.Context, req.Response)
	if err != nil {
		writeError(w, statusFor(err, http.StatusBadRequest), err)
		return
	}
	writeJSON(w, http.StatusOK, toVerdictJSON(v, v.IsCorrect(c.Threshold())))
}
