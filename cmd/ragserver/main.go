// Command ragserver runs the end-to-end system of Fig. 2 as an HTTP
// service on the internal/serve layer: documents are sharded across
// parallel vector-database shards, questions are answered with
// retrieval-augmented generation, and every answer is verified by the
// multi-SLM framework — with micro-batched verification, embedding and
// verdict caches, and admission control in front of the hot path.
//
// Endpoints (JSON):
//
//	POST /ingest           {"text": "..."}            → {"chunks": n}
//	POST /ingest/bulk      {"texts": ["...", ...]}    → {"docs": n, "chunks": m}
//	POST /ask              {"question": "..."}        → answer + verdict
//	POST /verify           {"question","context","response"} → verdict
//	POST /search           {"query": "...", "k": 3}   → {"hits": [...]}
//	GET  /documents/{id}                              → stored document
//	DELETE /documents/{id}                            → {"deleted": id}
//	POST /admin/checkpoint                            → persistence counters
//	GET  /healthz                                     → {"status":"ok","docs":n}
//	GET  /stats                                       → serving-layer snapshot
//
// Overloaded requests are shed with 429 Too Many Requests; operations
// on absent document IDs return 404.
//
// With -data-dir the store is durable: every mutation is journaled to
// a per-shard write-ahead log, shards checkpoint in the background and
// on shutdown, and a restarted server recovers its index without
// re-ingesting (see docs/persistence.md).
//
// Usage:
//
//	ragserver [-addr :8080] [-topk 3] [-threshold 3.2] [-seed-demo]
//	          [-shards 4] [-max-batch 16] [-max-wait 2ms]
//	          [-max-inflight 64] [-max-queue 256]
//	          [-data-dir ""] [-fsync never|always|interval]
//	          [-checkpoint-every 30s]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/serve"
	"repro/internal/storage"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		topK        = flag.Int("topk", 3, "retrieved passages per question")
		threshold   = flag.Float64("threshold", 3.2, "verification acceptance threshold")
		seedDemo    = flag.Bool("seed-demo", false, "preload the synthetic HR handbook and calibrate on it")
		shards      = flag.Int("shards", 0, "vector DB shards (0 = auto, or the stored count when -data-dir exists)")
		maxBatch    = flag.Int("max-batch", 16, "max verification requests per micro-batch")
		maxWait     = flag.Duration("max-wait", 2*time.Millisecond, "max wait to fill a micro-batch")
		maxInflight = flag.Int("max-inflight", 64, "max concurrently executing requests")
		maxQueue    = flag.Int("max-queue", 256, "max requests waiting for a slot before shedding (-1 disables queueing)")
		dataDir     = flag.String("data-dir", "", "directory for per-shard WALs and checkpoints (empty = memory-only)")
		fsync       = flag.String("fsync", "never", "WAL fsync policy: never, always, or interval")
		ckEvery     = flag.Duration("checkpoint-every", 30*time.Second, "background checkpoint period (negative disables)")
	)
	flag.Parse()
	policy, err := storage.ParseSyncPolicy(*fsync)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ragserver:", err)
		os.Exit(1)
	}
	srv, err := newServer(serve.Config{
		Shards:      *shards,
		TopK:        *topK,
		Threshold:   *threshold,
		MaxBatch:    *maxBatch,
		MaxWait:     *maxWait,
		MaxInFlight: *maxInflight,
		MaxQueue:    *maxQueue,
		DataDir:     *dataDir,
		Persist: serve.PersistConfig{
			Fsync:           policy,
			CheckpointEvery: *ckEvery,
		},
	}, *seedDemo)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ragserver:", err)
		os.Exit(1)
	}
	if *dataDir != "" {
		st := srv.core.Stats().Persist
		log.Printf("recovered %d docs from %s (replayed %d WAL records)",
			srv.core.Store().Len(), *dataDir, st.ReplayedRecords)
	}
	log.Printf("ragserver listening on %s (shards=%d topk=%d threshold=%.2f)",
		*addr, srv.core.Store().Shards(), *topK, *threshold)
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv.routes(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	// Graceful shutdown: stop accepting traffic, then checkpoint the
	// store so the next boot replays nothing.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpServer.ListenAndServe() }()
	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "ragserver:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	log.Printf("shutting down: draining connections and checkpointing")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpServer.Shutdown(shutdownCtx); err != nil {
		log.Printf("ragserver: http shutdown: %v", err)
	}
	if err := srv.core.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "ragserver: close:", err)
		os.Exit(1)
	}
}

// server wires the serving layer behind HTTP handlers.
type server struct {
	core *serve.Server
}

func newServer(cfg serve.Config, seedDemo bool) (*server, error) {
	sv, err := serve.New(cfg)
	if err != nil {
		return nil, err
	}
	s := &server{core: sv}
	if seedDemo {
		if err := s.seedDemo(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// seedDemo ingests the synthetic handbook and calibrates the
// detector's normalization moments on its responses (Eq. 4's
// "previous responses"), freezing them so the parallel batch path and
// the verdict cache see a pure scoring function.
func (s *server) seedDemo() error {
	set, err := dataset.Default()
	if err != nil {
		return err
	}
	ctx := context.Background()
	// A durable store that recovered documents already holds the demo
	// corpus (or real traffic) — re-ingesting would duplicate it. The
	// calibration below is in-memory state and runs on every boot.
	if s.core.Store().Len() == 0 {
		for _, ctxText := range set.Contexts() {
			if _, err := s.core.Store().Add(ctxText, nil); err != nil {
				return err
			}
		}
	}
	var triples []core.Triple
	for _, it := range set.Items {
		for _, r := range it.Responses {
			triples = append(triples, core.Triple{
				Question: it.Question, Context: it.Context, Response: r.Text,
			})
		}
	}
	log.Printf("seeding demo: %d passages, calibrating on %d responses", s.core.Store().Len(), len(triples))
	return s.core.Calibrate(ctx, triples)
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/ingest", s.handleIngest)
	mux.HandleFunc("/ingest/bulk", s.handleIngestBulk)
	mux.HandleFunc("/ask", s.handleAsk)
	mux.HandleFunc("/verify", s.handleVerify)
	mux.HandleFunc("/search", s.handleSearch)
	mux.HandleFunc("/documents/", s.handleDocument)
	mux.HandleFunc("/admin/checkpoint", s.handleCheckpoint)
	return mux
}

// writeJSON sends v with the given status.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("ragserver: encode response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// statusFor maps serving-layer errors onto HTTP statuses: shed load is
// 429, expired deadlines are 503, absent documents are 404, everything
// else is the fallback.
func statusFor(err error, fallback int) int {
	switch {
	case errors.Is(err, serve.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	case errors.Is(err, serve.ErrNotFound):
		return http.StatusNotFound
	default:
		return fallback
	}
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status": "ok",
		"docs":   s.core.Store().Len(),
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
		return
	}
	writeJSON(w, http.StatusOK, s.core.Stats())
}

func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req struct {
		Text string `json:"text"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	n, err := s.core.Ingest(r.Context(), req.Text)
	if err != nil {
		writeError(w, statusFor(err, http.StatusBadRequest), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"chunks": n})
}

func (s *server) handleIngestBulk(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req struct {
		Texts []string `json:"texts"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Texts) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty texts array"))
		return
	}
	chunks, err := s.core.IngestBulk(r.Context(), req.Texts)
	if err != nil {
		writeError(w, statusFor(err, http.StatusBadRequest), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"docs": len(req.Texts), "chunks": chunks})
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req struct {
		Query string `json:"query"`
		K     int    `json:"k"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Query == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty query"))
		return
	}
	if req.K <= 0 {
		req.K = 3
	}
	hits, err := s.core.Search(r.Context(), req.Query, req.K)
	if err != nil {
		writeError(w, statusFor(err, http.StatusInternalServerError), err)
		return
	}
	type hitJSON struct {
		ID    int64   `json:"id"`
		Score float64 `json:"score"`
		Text  string  `json:"text"`
	}
	out := make([]hitJSON, 0, len(hits))
	for _, h := range hits {
		out = append(out, hitJSON{ID: h.ID, Score: h.Score, Text: h.Text})
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"hits": out})
}

// handleDocument serves GET and DELETE on /documents/{id}. Absent IDs
// are 404 via the serving layer's typed ErrNotFound.
func (s *server) handleDocument(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/documents/")
	id, err := strconv.ParseInt(idStr, 10, 64)
	if err != nil || id <= 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad document id %q", idStr))
		return
	}
	switch r.Method {
	case http.MethodGet:
		doc, err := s.core.GetDocument(r.Context(), id)
		if err != nil {
			writeError(w, statusFor(err, http.StatusInternalServerError), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"id": doc.ID, "text": doc.Text, "meta": doc.Meta,
		})
	case http.MethodDelete:
		if err := s.core.DeleteDocument(r.Context(), id); err != nil {
			writeError(w, statusFor(err, http.StatusInternalServerError), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]int64{"deleted": id})
	default:
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET or DELETE required"))
	}
}

// handleCheckpoint forces a checkpoint of every dirty shard — the
// operator's knob before a planned restart or shard migration.
func (s *server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	if err := s.core.Checkpoint(); err != nil {
		// A memory-only server is the caller's mistake (400); a failing
		// checkpoint on a durable server is a server fault (500).
		status := http.StatusInternalServerError
		if errors.Is(err, serve.ErrNoDataDir) {
			status = http.StatusBadRequest
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, s.core.Stats().Persist)
}

// verdictJSON is the wire form of a core.Verdict.
type verdictJSON struct {
	Score     float64        `json:"score"`
	Trusted   bool           `json:"trusted"`
	Sentences []sentenceJSON `json:"sentences"`
}

type sentenceJSON struct {
	Sentence string             `json:"sentence"`
	Combined float64            `json:"combined"`
	Raw      map[string]float64 `json:"raw"`
}

func toVerdictJSON(v core.Verdict, trusted bool) verdictJSON {
	out := verdictJSON{Score: v.Score, Trusted: trusted}
	for _, s := range v.Sentences {
		out.Sentences = append(out.Sentences, sentenceJSON{
			Sentence: s.Sentence, Combined: s.Combined, Raw: s.Raw,
		})
	}
	return out
}

func (s *server) handleAsk(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req struct {
		Question string `json:"question"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Question == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty question"))
		return
	}
	ans, err := s.core.Ask(r.Context(), req.Question)
	if err != nil {
		writeError(w, statusFor(err, http.StatusInternalServerError), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"question": ans.Question,
		"context":  ans.Context,
		"response": ans.Response,
		"verdict":  toVerdictJSON(ans.Verdict, ans.Trusted),
	})
}

func (s *server) handleVerify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req struct {
		Question string `json:"question"`
		Context  string `json:"context"`
		Response string `json:"response"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	v, err := s.core.Verify(r.Context(), req.Question, req.Context, req.Response)
	if err != nil {
		writeError(w, statusFor(err, http.StatusBadRequest), err)
		return
	}
	writeJSON(w, http.StatusOK, toVerdictJSON(v, v.IsCorrect(s.core.Threshold())))
}
