// Command ragserver runs the end-to-end system of Fig. 2 as an HTTP
// service on the internal/serve layer: documents are sharded across
// parallel vector-database shards, questions are answered with
// retrieval-augmented generation, and every answer is verified by the
// multi-SLM framework — with micro-batched verification, embedding and
// verdict caches, and admission control in front of the hot path.
//
// Endpoints (JSON):
//
//	POST /ingest   {"text": "..."}               → {"chunks": n}
//	POST /ask      {"question": "..."}           → answer + verdict
//	POST /verify   {"question","context","response"} → verdict
//	GET  /healthz                                → {"status":"ok","docs":n}
//	GET  /stats                                  → serving-layer snapshot
//
// Overloaded requests are shed with 429 Too Many Requests.
//
// Usage:
//
//	ragserver [-addr :8080] [-topk 3] [-threshold 3.2] [-seed-demo]
//	          [-shards 4] [-max-batch 16] [-max-wait 2ms]
//	          [-max-inflight 64] [-max-queue 256]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		topK        = flag.Int("topk", 3, "retrieved passages per question")
		threshold   = flag.Float64("threshold", 3.2, "verification acceptance threshold")
		seedDemo    = flag.Bool("seed-demo", false, "preload the synthetic HR handbook and calibrate on it")
		shards      = flag.Int("shards", 0, "vector DB shards (0 = auto)")
		maxBatch    = flag.Int("max-batch", 16, "max verification requests per micro-batch")
		maxWait     = flag.Duration("max-wait", 2*time.Millisecond, "max wait to fill a micro-batch")
		maxInflight = flag.Int("max-inflight", 64, "max concurrently executing requests")
		maxQueue    = flag.Int("max-queue", 256, "max requests waiting for a slot before shedding (-1 disables queueing)")
	)
	flag.Parse()
	srv, err := newServer(serve.Config{
		Shards:      *shards,
		TopK:        *topK,
		Threshold:   *threshold,
		MaxBatch:    *maxBatch,
		MaxWait:     *maxWait,
		MaxInFlight: *maxInflight,
		MaxQueue:    *maxQueue,
	}, *seedDemo)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ragserver:", err)
		os.Exit(1)
	}
	log.Printf("ragserver listening on %s (shards=%d topk=%d threshold=%.2f)",
		*addr, srv.core.Store().Shards(), *topK, *threshold)
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv.routes(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	if err := httpServer.ListenAndServe(); err != nil {
		fmt.Fprintln(os.Stderr, "ragserver:", err)
		os.Exit(1)
	}
}

// server wires the serving layer behind HTTP handlers.
type server struct {
	core *serve.Server
}

func newServer(cfg serve.Config, seedDemo bool) (*server, error) {
	sv, err := serve.New(cfg)
	if err != nil {
		return nil, err
	}
	s := &server{core: sv}
	if seedDemo {
		if err := s.seedDemo(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// seedDemo ingests the synthetic handbook and calibrates the
// detector's normalization moments on its responses (Eq. 4's
// "previous responses"), freezing them so the parallel batch path and
// the verdict cache see a pure scoring function.
func (s *server) seedDemo() error {
	set, err := dataset.Default()
	if err != nil {
		return err
	}
	ctx := context.Background()
	for _, ctxText := range set.Contexts() {
		if _, err := s.core.Store().Add(ctxText, nil); err != nil {
			return err
		}
	}
	var triples []core.Triple
	for _, it := range set.Items {
		for _, r := range it.Responses {
			triples = append(triples, core.Triple{
				Question: it.Question, Context: it.Context, Response: r.Text,
			})
		}
	}
	log.Printf("seeding demo: %d passages, calibrating on %d responses", s.core.Store().Len(), len(triples))
	return s.core.Calibrate(ctx, triples)
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/ingest", s.handleIngest)
	mux.HandleFunc("/ask", s.handleAsk)
	mux.HandleFunc("/verify", s.handleVerify)
	return mux
}

// writeJSON sends v with the given status.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("ragserver: encode response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// statusFor maps serving-layer errors onto HTTP statuses: shed load is
// 429, expired deadlines are 503, everything else is the fallback.
func statusFor(err error, fallback int) int {
	switch {
	case errors.Is(err, serve.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	default:
		return fallback
	}
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status": "ok",
		"docs":   s.core.Store().Len(),
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
		return
	}
	writeJSON(w, http.StatusOK, s.core.Stats())
}

func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req struct {
		Text string `json:"text"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	n, err := s.core.Ingest(r.Context(), req.Text)
	if err != nil {
		writeError(w, statusFor(err, http.StatusBadRequest), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"chunks": n})
}

// verdictJSON is the wire form of a core.Verdict.
type verdictJSON struct {
	Score     float64        `json:"score"`
	Trusted   bool           `json:"trusted"`
	Sentences []sentenceJSON `json:"sentences"`
}

type sentenceJSON struct {
	Sentence string             `json:"sentence"`
	Combined float64            `json:"combined"`
	Raw      map[string]float64 `json:"raw"`
}

func toVerdictJSON(v core.Verdict, trusted bool) verdictJSON {
	out := verdictJSON{Score: v.Score, Trusted: trusted}
	for _, s := range v.Sentences {
		out.Sentences = append(out.Sentences, sentenceJSON{
			Sentence: s.Sentence, Combined: s.Combined, Raw: s.Raw,
		})
	}
	return out
}

func (s *server) handleAsk(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req struct {
		Question string `json:"question"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Question == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty question"))
		return
	}
	ans, err := s.core.Ask(r.Context(), req.Question)
	if err != nil {
		writeError(w, statusFor(err, http.StatusInternalServerError), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"question": ans.Question,
		"context":  ans.Context,
		"response": ans.Response,
		"verdict":  toVerdictJSON(ans.Verdict, ans.Trusted),
	})
}

func (s *server) handleVerify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req struct {
		Question string `json:"question"`
		Context  string `json:"context"`
		Response string `json:"response"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	v, err := s.core.Verify(r.Context(), req.Question, req.Context, req.Response)
	if err != nil {
		writeError(w, statusFor(err, http.StatusBadRequest), err)
		return
	}
	writeJSON(w, http.StatusOK, toVerdictJSON(v, v.IsCorrect(s.core.Threshold())))
}
