package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/serve"
)

// newTestServer builds an un-seeded server on the serving layer.
func newTestServer(t *testing.T) *server {
	t.Helper()
	s, err := newServer(serve.Config{TopK: 2, Threshold: 3.2}, false)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.core.Close)
	return s
}

func postJSON(t *testing.T, h http.Handler, path string, body interface{}) *httptest.ResponseRecorder {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(buf))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t)
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	s.routes().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var out map[string]interface{}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out["status"] != "ok" {
		t.Errorf("health = %v", out)
	}
}

func TestIngestAskVerifyFlow(t *testing.T) {
	s := newTestServer(t)
	h := s.routes()

	// Ingest a small handbook.
	doc := "The store operates from 9 AM to 5 PM, from Sunday to Saturday. " +
		"There should be at least three shopkeepers to run a shop. " +
		"Employees are entitled to 14 days of paid annual leave per year."
	rec := postJSON(t, h, "/ingest", map[string]string{"text": doc})
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest status %d: %s", rec.Code, rec.Body)
	}
	var ing struct {
		Chunks int `json:"chunks"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &ing); err != nil {
		t.Fatal(err)
	}
	if ing.Chunks == 0 {
		t.Fatal("no chunks ingested")
	}

	// Ask a question through the verified pipeline.
	rec = postJSON(t, h, "/ask", map[string]string{"question": "What are the working hours?"})
	if rec.Code != http.StatusOK {
		t.Fatalf("ask status %d: %s", rec.Code, rec.Body)
	}
	var ans struct {
		Response string `json:"response"`
		Verdict  struct {
			Score     float64 `json:"score"`
			Sentences []struct {
				Sentence string `json:"sentence"`
			} `json:"sentences"`
		} `json:"verdict"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &ans); err != nil {
		t.Fatal(err)
	}
	if ans.Response == "" || len(ans.Verdict.Sentences) == 0 {
		t.Fatalf("incomplete answer: %s", rec.Body)
	}

	// Verify a known hallucination directly.
	rec = postJSON(t, h, "/verify", map[string]string{
		"question": "What are the working hours?",
		"context":  doc,
		"response": "The working hours are 9 AM to 9 PM. You do not need to work on weekends.",
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("verify status %d: %s", rec.Code, rec.Body)
	}
	var bad struct {
		Score float64 `json:"score"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &bad); err != nil {
		t.Fatal(err)
	}
	rec = postJSON(t, h, "/verify", map[string]string{
		"question": "What are the working hours?",
		"context":  doc,
		"response": "The working hours are 9 AM to 5 PM. The store is open from Sunday to Saturday.",
	})
	var good struct {
		Score float64 `json:"score"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &good); err != nil {
		t.Fatal(err)
	}
	if good.Score <= bad.Score {
		t.Errorf("grounded score %.3f not above hallucinated %.3f", good.Score, bad.Score)
	}
}

func TestBadRequests(t *testing.T) {
	s := newTestServer(t)
	h := s.routes()

	// Wrong method.
	req := httptest.NewRequest(http.MethodGet, "/ask", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /ask status = %d", rec.Code)
	}
	// Malformed JSON.
	req = httptest.NewRequest(http.MethodPost, "/ask", bytes.NewReader([]byte("{")))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed /ask status = %d", rec.Code)
	}
	// Empty question.
	rec = postJSON(t, h, "/ask", map[string]string{"question": ""})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("empty question status = %d", rec.Code)
	}
	// Verify with empty response.
	rec = postJSON(t, h, "/verify", map[string]string{"question": "q", "context": "c", "response": ""})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("empty response status = %d", rec.Code)
	}
}

func TestSeedDemo(t *testing.T) {
	if testing.Short() {
		t.Skip("seeding calibrates on 360 responses")
	}
	s, err := newServer(serve.Config{TopK: 2, Threshold: 3.2}, true)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.core.Close)
	if s.core.Store().Len() == 0 {
		t.Error("demo seed indexed nothing")
	}
}

// TestStatsEndpoint: GET /stats exposes shard sizes, cache and batch
// counters after traffic has flowed. The verdict cache only engages
// once the detector is calibrated (frozen), so this server calibrates
// on a tiny fixture first.
func TestStatsEndpoint(t *testing.T) {
	doc := "The store operates from 9 AM to 5 PM, from Sunday to Saturday. " +
		"Employees are entitled to 14 days of paid annual leave per year."
	det, err := core.NewProposed()
	if err != nil {
		t.Fatal(err)
	}
	if err := det.Calibrate(context.Background(), []core.Triple{
		{Question: "What are the working hours?", Context: doc, Response: doc},
	}); err != nil {
		t.Fatal(err)
	}
	s, err := newServer(serve.Config{TopK: 2, Threshold: 3.2, Detector: det}, false)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.core.Close)
	h := s.routes()
	if rec := postJSON(t, h, "/ingest", map[string]string{"text": doc}); rec.Code != http.StatusOK {
		t.Fatalf("ingest status %d: %s", rec.Code, rec.Body)
	}
	// Same question twice: the second answer must come from the verdict
	// cache.
	for i := 0; i < 2; i++ {
		if rec := postJSON(t, h, "/ask", map[string]string{"question": "What are the working hours?"}); rec.Code != http.StatusOK {
			t.Fatalf("ask %d status %d: %s", i, rec.Code, rec.Body)
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/stats", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status %d: %s", rec.Code, rec.Body)
	}
	var st serve.Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Docs == 0 || len(st.ShardSizes) == 0 {
		t.Errorf("stats missing shard data: %+v", st)
	}
	if st.Requests.Asks != 2 || st.Requests.Ingests != 1 {
		t.Errorf("request counters wrong: %+v", st.Requests)
	}
	if st.VerdictCache.Hits == 0 {
		t.Errorf("repeated ask did not hit the verdict cache: %+v", st.VerdictCache)
	}
	// POST /stats is rejected.
	rec = postJSON(t, h, "/stats", map[string]string{})
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /stats status = %d", rec.Code)
	}
}
