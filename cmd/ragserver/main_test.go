package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/serve"
)

// newTestServer builds an un-seeded server on the serving layer.
func newTestServer(t *testing.T) *server {
	t.Helper()
	s, err := newServer(serve.Config{TopK: 2, Threshold: 3.2}, false)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.core.Load().Close() })
	return s
}

func postJSON(t *testing.T, h http.Handler, path string, body interface{}) *httptest.ResponseRecorder {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(buf))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t)
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	s.routes().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var out map[string]interface{}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out["status"] != "ok" {
		t.Errorf("health = %v", out)
	}
}

// TestReadyzGating: before init completes the listener is alive
// (/healthz 200, ready:false) but /readyz and every data endpoint
// answer 503; after init, /readyz flips to 200.
func TestReadyzGating(t *testing.T) {
	s := &server{} // core not yet initialized — the pre-recovery window
	h := s.routes()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz during init = %d, want 200", rec.Code)
	}
	var health struct {
		Ready bool `json:"ready"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Ready {
		t.Error("healthz claims ready before init")
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz during init = %d, want 503", rec.Code)
	}
	if rec := postJSON(t, h, "/ask", map[string]string{"question": "q"}); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("ask during init = %d, want 503", rec.Code)
	}
	if rec := postJSON(t, h, "/search", map[string]interface{}{"query": "q"}); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("search during init = %d, want 503", rec.Code)
	}

	ready := newTestServer(t)
	rec = httptest.NewRecorder()
	ready.routes().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("readyz after init = %d, want 200", rec.Code)
	}
}

func TestIngestAskVerifyFlow(t *testing.T) {
	s := newTestServer(t)
	h := s.routes()

	// Ingest a small handbook.
	doc := "The store operates from 9 AM to 5 PM, from Sunday to Saturday. " +
		"There should be at least three shopkeepers to run a shop. " +
		"Employees are entitled to 14 days of paid annual leave per year."
	rec := postJSON(t, h, "/ingest", map[string]string{"text": doc})
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest status %d: %s", rec.Code, rec.Body)
	}
	var ing struct {
		Chunks int `json:"chunks"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &ing); err != nil {
		t.Fatal(err)
	}
	if ing.Chunks == 0 {
		t.Fatal("no chunks ingested")
	}

	// Ask a question through the verified pipeline.
	rec = postJSON(t, h, "/ask", map[string]string{"question": "What are the working hours?"})
	if rec.Code != http.StatusOK {
		t.Fatalf("ask status %d: %s", rec.Code, rec.Body)
	}
	var ans struct {
		Response string `json:"response"`
		Verdict  struct {
			Score     float64 `json:"score"`
			Sentences []struct {
				Sentence string `json:"sentence"`
			} `json:"sentences"`
		} `json:"verdict"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &ans); err != nil {
		t.Fatal(err)
	}
	if ans.Response == "" || len(ans.Verdict.Sentences) == 0 {
		t.Fatalf("incomplete answer: %s", rec.Body)
	}

	// Verify a known hallucination directly.
	rec = postJSON(t, h, "/verify", map[string]string{
		"question": "What are the working hours?",
		"context":  doc,
		"response": "The working hours are 9 AM to 9 PM. You do not need to work on weekends.",
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("verify status %d: %s", rec.Code, rec.Body)
	}
	var bad struct {
		Score float64 `json:"score"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &bad); err != nil {
		t.Fatal(err)
	}
	rec = postJSON(t, h, "/verify", map[string]string{
		"question": "What are the working hours?",
		"context":  doc,
		"response": "The working hours are 9 AM to 5 PM. The store is open from Sunday to Saturday.",
	})
	var good struct {
		Score float64 `json:"score"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &good); err != nil {
		t.Fatal(err)
	}
	if good.Score <= bad.Score {
		t.Errorf("grounded score %.3f not above hallucinated %.3f", good.Score, bad.Score)
	}
}

func TestBadRequests(t *testing.T) {
	s := newTestServer(t)
	h := s.routes()

	// Wrong method.
	req := httptest.NewRequest(http.MethodGet, "/ask", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /ask status = %d", rec.Code)
	}
	// Malformed JSON.
	req = httptest.NewRequest(http.MethodPost, "/ask", bytes.NewReader([]byte("{")))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed /ask status = %d", rec.Code)
	}
	// Empty question.
	rec = postJSON(t, h, "/ask", map[string]string{"question": ""})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("empty question status = %d", rec.Code)
	}
	// Verify with empty response.
	rec = postJSON(t, h, "/verify", map[string]string{"question": "q", "context": "c", "response": ""})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("empty response status = %d", rec.Code)
	}
}

func TestSeedDemo(t *testing.T) {
	if testing.Short() {
		t.Skip("seeding calibrates on 360 responses")
	}
	s, err := newServer(serve.Config{TopK: 2, Threshold: 3.2}, true)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.core.Load().Close() })
	if s.core.Load().Store().Len() == 0 {
		t.Error("demo seed indexed nothing")
	}
}

// TestStatsEndpoint: GET /stats exposes shard sizes, cache and batch
// counters after traffic has flowed. The verdict cache only engages
// once the detector is calibrated (frozen), so this server calibrates
// on a tiny fixture first.
func TestStatsEndpoint(t *testing.T) {
	doc := "The store operates from 9 AM to 5 PM, from Sunday to Saturday. " +
		"Employees are entitled to 14 days of paid annual leave per year."
	det, err := core.NewProposed()
	if err != nil {
		t.Fatal(err)
	}
	if err := det.Calibrate(context.Background(), []core.Triple{
		{Question: "What are the working hours?", Context: doc, Response: doc},
	}); err != nil {
		t.Fatal(err)
	}
	s, err := newServer(serve.Config{TopK: 2, Threshold: 3.2, Detector: det}, false)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.core.Load().Close() })
	h := s.routes()
	if rec := postJSON(t, h, "/ingest", map[string]string{"text": doc}); rec.Code != http.StatusOK {
		t.Fatalf("ingest status %d: %s", rec.Code, rec.Body)
	}
	// Same question twice: the second answer must come from the verdict
	// cache.
	for i := 0; i < 2; i++ {
		if rec := postJSON(t, h, "/ask", map[string]string{"question": "What are the working hours?"}); rec.Code != http.StatusOK {
			t.Fatalf("ask %d status %d: %s", i, rec.Code, rec.Body)
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/stats", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status %d: %s", rec.Code, rec.Body)
	}
	var st serve.Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Docs == 0 || len(st.ShardSizes) == 0 {
		t.Errorf("stats missing shard data: %+v", st)
	}
	if st.Requests.Asks != 2 || st.Requests.Ingests != 1 {
		t.Errorf("request counters wrong: %+v", st.Requests)
	}
	if st.VerdictCache.Hits == 0 {
		t.Errorf("repeated ask did not hit the verdict cache: %+v", st.VerdictCache)
	}
	// Persistence metrics are present (and report disabled on a
	// memory-only server).
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["persist"]; !ok {
		t.Errorf("stats missing persist section: %s", rec.Body)
	}
	if st.Persist.Enabled {
		t.Errorf("memory-only server reports persistence enabled: %+v", st.Persist)
	}
	// POST /stats is rejected.
	rec = postJSON(t, h, "/stats", map[string]string{})
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /stats status = %d", rec.Code)
	}
}

func TestIngestBulkEndpoint(t *testing.T) {
	s := newTestServer(t)
	h := s.routes()
	rec := postJSON(t, h, "/ingest/bulk", map[string][]string{"texts": {
		"The store operates from 9 AM to 5 PM every day of the week.",
		"Employees are entitled to 14 days of paid annual leave per year.",
		"At least three shopkeepers are required to run a shop.",
	}})
	if rec.Code != http.StatusOK {
		t.Fatalf("bulk ingest status %d: %s", rec.Code, rec.Body)
	}
	var out struct {
		Docs   int `json:"docs"`
		Chunks int `json:"chunks"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Docs != 3 || out.Chunks < 3 {
		t.Errorf("bulk ingest = %+v", out)
	}
	if got := s.core.Load().Store().Len(); got != out.Chunks {
		t.Errorf("store holds %d chunks, response said %d", got, out.Chunks)
	}
	// Empty and malformed bodies are rejected.
	if rec := postJSON(t, h, "/ingest/bulk", map[string][]string{"texts": {}}); rec.Code != http.StatusBadRequest {
		t.Errorf("empty bulk ingest status = %d", rec.Code)
	}
}

func TestDocumentEndpointNotFoundMapping(t *testing.T) {
	s := newTestServer(t)
	h := s.routes()
	rec := postJSON(t, h, "/ingest", map[string]string{"text": "The probation period lasts three months."})
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest status %d", rec.Code)
	}
	// A stored document is retrievable and deletable.
	req := httptest.NewRequest(http.MethodGet, "/documents/1", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /documents/1 status = %d: %s", rec.Code, rec.Body)
	}
	req = httptest.NewRequest(http.MethodDelete, "/documents/1", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("DELETE /documents/1 status = %d: %s", rec.Code, rec.Body)
	}
	// Absent IDs map to 404 — typed ErrNotFound, not a 500.
	for _, method := range []string{http.MethodGet, http.MethodDelete} {
		req := httptest.NewRequest(method, "/documents/1", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusNotFound {
			t.Errorf("%s deleted doc status = %d, want 404", method, rec.Code)
		}
	}
	// Garbage IDs are 400.
	req = httptest.NewRequest(http.MethodGet, "/documents/banana", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("GET /documents/banana status = %d, want 400", rec.Code)
	}
}

func TestCheckpointEndpointRequiresDataDir(t *testing.T) {
	s := newTestServer(t)
	rec := postJSON(t, s.routes(), "/admin/checkpoint", map[string]string{})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("checkpoint on memory-only server status = %d, want 400", rec.Code)
	}
}

// newDurableServer builds a server persisting to dir with the
// background checkpointer disabled, so tests decide when state moves
// from WAL to checkpoint.
func newDurableServer(t *testing.T, dir string) *server {
	t.Helper()
	s, err := newServer(serve.Config{
		TopK: 2, Threshold: 3.2, Shards: 2, DataDir: dir,
		Persist: serve.PersistConfig{CheckpointEvery: -1},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// getJSON performs a GET and returns the recorder.
func getJSON(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestRecoveryServesIdenticalResults is the acceptance path: a server
// with -data-dir is loaded, checkpointed mid-stream, loaded some more,
// then dies without a graceful shutdown; the restarted server answers
// /search identically with zero re-ingestion, having replayed the
// post-checkpoint WAL records on top of the checkpoint.
func TestRecoveryServesIdenticalResults(t *testing.T) {
	dir := t.TempDir()
	s1 := newDurableServer(t, dir)
	h1 := s1.routes()

	if rec := postJSON(t, h1, "/ingest/bulk", map[string][]string{"texts": {
		"The store operates from 9 AM to 5 PM, from Sunday to Saturday.",
		"Employees are entitled to 14 days of paid annual leave per year.",
	}}); rec.Code != http.StatusOK {
		t.Fatalf("bulk ingest status %d: %s", rec.Code, rec.Body)
	}
	// Move the first wave into a checkpoint.
	if rec := postJSON(t, h1, "/admin/checkpoint", map[string]string{}); rec.Code != http.StatusOK {
		t.Fatalf("checkpoint status %d: %s", rec.Code, rec.Body)
	}
	// Second wave lives only in the WAL.
	if rec := postJSON(t, h1, "/ingest", map[string]string{
		"text": "At least three shopkeepers are required to run a shop. Overtime is paid at time and a half.",
	}); rec.Code != http.StatusOK {
		t.Fatalf("ingest status %d: %s", rec.Code, rec.Body)
	}
	searchReq := map[string]interface{}{"query": "how many shopkeepers run a shop", "k": 3}
	before := postJSON(t, h1, "/search", searchReq)
	if before.Code != http.StatusOK {
		t.Fatalf("search status %d: %s", before.Code, before.Body)
	}
	var health struct {
		Docs int `json:"docs"`
	}
	if err := json.Unmarshal(getJSON(t, h1, "/healthz").Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	// Crash: s1 is abandoned without Close, so nothing past the explicit
	// checkpoint gets snapshotted — recovery must come from the WAL.

	s2 := newDurableServer(t, dir)
	t.Cleanup(func() { s2.core.Load().Close() })
	h2 := s2.routes()
	var health2 struct {
		Docs int `json:"docs"`
	}
	if err := json.Unmarshal(getJSON(t, h2, "/healthz").Body.Bytes(), &health2); err != nil {
		t.Fatal(err)
	}
	if health2.Docs != health.Docs || health.Docs == 0 {
		t.Fatalf("recovered %d docs, want %d", health2.Docs, health.Docs)
	}
	after := postJSON(t, h2, "/search", searchReq)
	if after.Code != http.StatusOK {
		t.Fatalf("search after recovery status %d: %s", after.Code, after.Body)
	}
	if before.Body.String() != after.Body.String() {
		t.Errorf("search diverged after recovery:\n before %s\n after  %s", before.Body, after.Body)
	}
	var st serve.Snapshot
	if err := json.Unmarshal(getJSON(t, h2, "/stats").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if !st.Persist.Enabled {
		t.Error("durable server reports persistence disabled")
	}
	if st.Persist.ReplayedRecords == 0 {
		t.Error("recovery replayed no WAL records — second wave came from nowhere")
	}
}
