// Package repro's root benchmark suite regenerates every table and
// figure of the paper's evaluation (§V) as Go benchmarks, plus the
// DESIGN.md §4 ablations. Each benchmark reports the figure's headline
// numbers as custom metrics (F1×1000, precision/recall×1000) so
// `go test -bench` output doubles as the reproduction record, and
// prints the full table once per run.
//
// The expensive part — scoring every response with every approach —
// runs once per process in shared setup; the timed loop measures the
// evaluation sweep (threshold search + metric computation), which is
// the part a practitioner reruns while exploring operating points.
package repro

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/rag"
	"repro/internal/serve"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/vecdb"
)

// benchItems keeps full-suite benchmarks tractable while covering all
// 16 topics several times; use cmd/experiments for the full n=120 run.
const benchItems = 64

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
	suiteErr  error
)

func benchSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		set, err := dataset.Generate(20250612, benchItems)
		if err != nil {
			suiteErr = err
			return
		}
		suite = experiments.NewSuite(set, experiments.DefaultWorkers)
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suite
}

var printOnce sync.Map

// printTable prints a figure's table exactly once per process.
func printTable(key, table string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n== %s ==\n%s", key, table)
	}
}

// BenchmarkTable1Taxonomy exercises Table I: the three contradiction
// examples classified sentence-by-sentence by the proposed detector
// against their own prompts (no external context — the paper's table
// is illustrative, so the benchmark measures raw verification cost on
// those inputs).
func BenchmarkTable1Taxonomy(b *testing.B) {
	d, err := core.NewProposed()
	if err != nil {
		b.Fatal(err)
	}
	examples := dataset.ContradictionExamples()
	ctx := context.Background()
	var triples []core.Triple
	for _, ex := range examples {
		triples = append(triples, core.Triple{Question: ex.Prompt, Context: ex.Prompt, Response: ex.Response})
	}
	if err := d.Calibrate(ctx, triples); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ex := range examples {
			if _, err := d.Score(ctx, ex.Prompt, ex.Prompt, ex.Response); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// fig3Bench reproduces one panel of Fig. 3 (and the matching Fig. 4
// panel shares its computation).
func fig3Bench(b *testing.B, contrast dataset.Label, panel string) {
	s := benchSuite(b)
	ctx := context.Background()
	var rows []experiments.ApproachResult
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err = s.Fig3(ctx, contrast)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printTable(panel, experiments.FormatFig3(rows))
	for _, r := range rows {
		b.ReportMetric(r.BestF1.F1()*1000, "f1e3_"+sanitize(r.Approach))
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		}
	}
	return string(out)
}

// BenchmarkFig3aBestF1Wrong: best F1 detecting correct vs wrong for
// all five approaches (paper: all high, ≈0.89–0.99).
func BenchmarkFig3aBestF1Wrong(b *testing.B) { fig3Bench(b, dataset.LabelWrong, "fig3a") }

// BenchmarkFig3bBestF1Partial: best F1 detecting correct vs partial
// (paper: proposed highest at 0.81, +11% over ChatGPT, +6.6% over
// P(yes)).
func BenchmarkFig3bBestF1Partial(b *testing.B) { fig3Bench(b, dataset.LabelPartial, "fig3b") }

// fig4Bench reproduces one panel of Fig. 4: best precision subject to
// recall ≥ 0.5.
func fig4Bench(b *testing.B, contrast dataset.Label, panel string) {
	s := benchSuite(b)
	ctx := context.Background()
	var rows []experiments.ApproachResult
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err = s.Fig4(ctx, contrast)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printTable(panel, experiments.FormatFig4(rows))
	for _, r := range rows {
		b.ReportMetric(r.BestPrec.Precision()*1000, "pe3_"+sanitize(r.Approach))
		b.ReportMetric(r.BestPrec.Recall()*1000, "re3_"+sanitize(r.Approach))
	}
}

// BenchmarkFig4aPrecisionWrong: paper's Fig. 4(a) — singles reach high
// precision only at low recall; the proposed method keeps recall.
func BenchmarkFig4aPrecisionWrong(b *testing.B) { fig4Bench(b, dataset.LabelWrong, "fig4a") }

// BenchmarkFig4bPrecisionPartial: Fig. 4(b), the harder contrast.
func BenchmarkFig4bPrecisionPartial(b *testing.B) { fig4Bench(b, dataset.LabelPartial, "fig4b") }

// fig5Bench reproduces one panel of Fig. 5: best F1 per aggregation
// mean over the proposed two-SLM pipeline.
func fig5Bench(b *testing.B, contrast dataset.Label, panel string) {
	s := benchSuite(b)
	ctx := context.Background()
	var rows []experiments.MeanResult
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err = s.Fig5(ctx, contrast)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printTable(panel, experiments.FormatFig5(rows))
	for _, r := range rows {
		b.ReportMetric(r.BestF1.F1()*1000, "f1e3_"+r.Mean.String())
	}
}

// BenchmarkFig5aMeansWrong: paper range 0.75–0.99 with max on top.
func BenchmarkFig5aMeansWrong(b *testing.B) { fig5Bench(b, dataset.LabelWrong, "fig5a") }

// BenchmarkFig5bMeansPartial: paper — harmonic best (0.81), max
// collapses, min worst (0.66).
func BenchmarkFig5bMeansPartial(b *testing.B) { fig5Bench(b, dataset.LabelPartial, "fig5b") }

// BenchmarkFig6Distributions regenerates the proposed-vs-P(yes) score
// histograms (Fig. 6).
func BenchmarkFig6Distributions(b *testing.B) {
	s := benchSuite(b)
	ctx := context.Background()
	var proposed, pyes *experiments.Distribution
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proposed, pyes, err = s.Fig6(ctx, 20)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printTable("fig6", "(a) "+experiments.FormatDistribution(proposed, 40)+
		"(b) "+experiments.FormatDistribution(pyes, 40))
}

// BenchmarkFig7MeanDistributions regenerates the geometric-vs-harmonic
// histograms (Fig. 7).
func BenchmarkFig7MeanDistributions(b *testing.B) {
	s := benchSuite(b)
	ctx := context.Background()
	var geo, har *experiments.Distribution
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		geo, har, err = s.Fig7(ctx, 20)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printTable("fig7", "(a) "+experiments.FormatDistribution(geo, 40)+
		"(b) "+experiments.FormatDistribution(har, 40))
}

// --- DESIGN.md §4 ablations ---

// BenchmarkAblationEnsembleSize varies the number of SLMs (1, 2, 3).
func BenchmarkAblationEnsembleSize(b *testing.B) {
	s := benchSuite(b)
	ctx := context.Background()
	var rows []experiments.AblationRow
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err = s.AblationEnsembleSize(ctx, dataset.LabelPartial)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printTable("ablation: ensemble size (vs partial)", experiments.FormatAblation("", rows))
	for _, r := range rows {
		b.ReportMetric(r.BestF1.F1()*1000, "f1e3_"+sanitize(r.Config))
	}
}

// BenchmarkAblationGating compares Eq. 5's uniform mean with the §VI
// gating combiners.
func BenchmarkAblationGating(b *testing.B) {
	s := benchSuite(b)
	ctx := context.Background()
	var rows []experiments.AblationRow
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err = s.AblationGating(ctx, dataset.LabelPartial)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printTable("ablation: gating (vs partial)", experiments.FormatAblation("", rows))
}

// BenchmarkAblationNormalization toggles Eq. 4's z-normalization.
func BenchmarkAblationNormalization(b *testing.B) {
	s := benchSuite(b)
	ctx := context.Background()
	var rows []experiments.AblationRow
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err = s.AblationNormalization(ctx, dataset.LabelPartial)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printTable("ablation: normalization (vs partial)", experiments.FormatAblation("", rows))
}

// BenchmarkAblationSplitter toggles sentence splitting at a fixed
// two-model harmonic configuration.
func BenchmarkAblationSplitter(b *testing.B) {
	s := benchSuite(b)
	ctx := context.Background()
	var rows []experiments.AblationRow
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err = s.AblationSplitter(ctx, dataset.LabelPartial)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printTable("ablation: splitter (vs partial)", experiments.FormatAblation("", rows))
}

// BenchmarkAblationTopK swaps the gold context for top-k retrieved
// context. Retrieval noise costs accuracy; more context dilutes the
// verifier (§IV-A's motivation seen from the retrieval side).
func BenchmarkAblationTopK(b *testing.B) {
	s := benchSuite(b)
	ctx := context.Background()
	var rows []experiments.AblationRow
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err = s.AblationTopK(ctx, dataset.LabelPartial, []int{1, 3})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printTable("ablation: retrieval top-k (vs partial)", experiments.FormatAblation("", rows))
}

// BenchmarkDetectorScore measures the end-to-end cost of verifying one
// response with the proposed two-SLM pipeline (cold signature caches
// excluded by the warmup call).
func BenchmarkDetectorScore(b *testing.B) {
	d, err := core.NewProposed()
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	q := "What are the working hours?"
	contextText := "The store operates from 9 AM to 5 PM, from Sunday to Saturday. There should be at least three shopkeepers to run a shop."
	response := "The working hours are 9 AM to 5 PM. The store is open from Monday to Friday."
	if err := d.Calibrate(ctx, []core.Triple{{Question: q, Context: contextText, Response: response}}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Score(ctx, q, contextText, response); err != nil {
			b.Fatal(err)
		}
	}
}

// --- serving-layer throughput (internal/serve vs seed path) ---

// serveCorpus builds the benchmark corpus and its question set: the
// synthetic handbook contexts plus filler passages, so retrieval does
// real work across shards.
func serveCorpus(b *testing.B) (docs, questions []string, triples []core.Triple) {
	b.Helper()
	set, err := dataset.Generate(20250612, 32)
	if err != nil {
		b.Fatal(err)
	}
	docs = set.Contexts()
	for i := 0; i < 192; i++ {
		docs = append(docs, fmt.Sprintf(
			"Filler policy %d. Clause %d applies to department %d only.", i, i*7, i%12))
	}
	for _, it := range set.Items[:8] {
		questions = append(questions, it.Question)
	}
	for _, it := range set.Items {
		for _, r := range it.Responses {
			triples = append(triples, core.Triple{
				Question: it.Question, Context: it.Context, Response: r.Text,
			})
		}
	}
	return docs, questions, triples
}

// calibratedProposed returns a frozen Proposed detector so both serve
// paths score with the same pure function under concurrency.
func calibratedProposed(b *testing.B, triples []core.Triple) *core.Detector {
	b.Helper()
	d, err := core.NewProposed()
	if err != nil {
		b.Fatal(err)
	}
	if err := d.Calibrate(context.Background(), triples); err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkServeSeedPathParallel is the baseline: the seed's serving
// path — one vecdb.DB behind a single RWMutex, one-question-at-a-time
// verification through rag.Pipeline.Ask — driven by RunParallel.
func BenchmarkServeSeedPathParallel(b *testing.B) {
	docs, questions, triples := serveCorpus(b)
	db, err := vecdb.NewDefault(256)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := db.AddAll(docs); err != nil {
		b.Fatal(err)
	}
	pipe, err := rag.NewPipeline(rag.PipelineConfig{
		DB:        db,
		TopK:      3,
		Generator: rag.ExtractiveGenerator{MaxSentences: 2},
		Detector:  calibratedProposed(b, triples),
		Threshold: 3.2,
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	var n atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q := questions[n.Add(1)%uint64(len(questions))]
			if _, err := pipe.Ask(ctx, q); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkServeShardedPathParallel is the internal/serve hot path:
// sharded retrieval, micro-batched verification, embedding + verdict
// caches and admission control. The acceptance bar is ≥2× the ops/sec
// of BenchmarkServeSeedPathParallel on a multi-core runner.
func BenchmarkServeShardedPathParallel(b *testing.B) {
	docs, questions, triples := serveCorpus(b)
	srv, err := serve.New(serve.Config{
		Shards:      8,
		Dim:         256,
		TopK:        3,
		Threshold:   3.2,
		Detector:    calibratedProposed(b, triples),
		MaxBatch:    16,
		MaxWait:     500 * time.Microsecond,
		MaxInFlight: 128,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	for _, d := range docs {
		if _, err := srv.Store().Add(d, nil); err != nil {
			b.Fatal(err)
		}
	}
	ctx := context.Background()
	var n atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q := questions[n.Add(1)%uint64(len(questions))]
			if _, err := srv.Ask(ctx, q); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	st := srv.Stats()
	b.ReportMetric(st.VerdictCache.HitRate*1000, "verdict_hit_e3")
	b.ReportMetric(st.Batch.MeanOccupancy, "batch_occupancy")
}

// BenchmarkShardedSearchParallel isolates retrieval: the sharded
// fan-out versus the equivalent single flat index under concurrent
// queries (verification excluded).
func BenchmarkShardedSearchParallel(b *testing.B) {
	docs, questions, _ := serveCorpus(b)
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s, err := serve.NewShardedDefault(shards, 256, 4096)
			if err != nil {
				b.Fatal(err)
			}
			for _, d := range docs {
				if _, err := s.Add(d, nil); err != nil {
					b.Fatal(err)
				}
			}
			var n atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					q := questions[n.Add(1)%uint64(len(questions))]
					if _, err := s.Search(q, 3); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkTelemetryOverhead prices the instrumentation itself: the
// same concurrent in-process search path (embed → fan-out → merge)
// with the store's stage histograms detached versus bound to a live
// registry. The instrumented arm pays one time.Now() per stage and one
// atomic bucket increment per observation; the committed
// BENCH_telemetry.json pins the delta under 5%.
func BenchmarkTelemetryOverhead(b *testing.B) {
	docs, questions, _ := serveCorpus(b)
	for _, arm := range []string{"bare", "instrumented"} {
		b.Run(arm, func(b *testing.B) {
			s, err := serve.NewShardedDefault(4, 256, 4096)
			if err != nil {
				b.Fatal(err)
			}
			if arm == "instrumented" {
				s.SetTelemetry(telemetry.NewRegistry())
			}
			for _, d := range docs {
				if _, err := s.Add(d, nil); err != nil {
					b.Fatal(err)
				}
			}
			var n atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					q := questions[n.Add(1)%uint64(len(questions))]
					if _, err := s.Search(q, 3); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkThresholdSweep isolates the metric sweep on a realistic
// score distribution — the inner loop of every figure.
func BenchmarkThresholdSweep(b *testing.B) {
	s := benchSuite(b)
	ctx := context.Background()
	rows, err := s.Fig3(ctx, dataset.LabelPartial)
	if err != nil {
		b.Fatal(err)
	}
	_ = rows
	sc, err := s.Fig3(ctx, dataset.LabelWrong)
	if err != nil {
		b.Fatal(err)
	}
	_ = sc
	// Rebuild one approach's samples for the sweep benchmark.
	d, err := core.NewProposed()
	if err != nil {
		b.Fatal(err)
	}
	scores, err := experiments.ScoreApproach(ctx, d, s.Set, experiments.DefaultWorkers)
	if err != nil {
		b.Fatal(err)
	}
	samples := scores.SamplesVs(dataset.LabelPartial)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := metrics.BestF1(samples); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALAppend measures the journaling hot path: framed,
// CRC-checksummed appends of realistic mutation records, per fsync
// policy. SyncAlways pays an fsync per append; the batch variant
// amortizes one fsync over 64 records, which is what bulk ingest does.
func BenchmarkWALAppend(b *testing.B) {
	payload, err := vecdb.EncodeMutation(vecdb.Mutation{
		Op: vecdb.OpAdd, ID: 123456,
		Text: "Employees are entitled to fourteen days of paid annual leave per year.",
		Meta: map[string]string{"source": "handbook"},
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		sync  storage.SyncPolicy
		batch int
	}{
		{"never", storage.SyncNever, 1},
		{"always", storage.SyncAlways, 1},
		{"always_batch64", storage.SyncAlways, 64},
	} {
		b.Run(tc.name, func(b *testing.B) {
			w, err := storage.OpenWAL(b.TempDir(), storage.WALOptions{Sync: tc.sync})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			batch := make([][]byte, tc.batch)
			for i := range batch {
				batch[i] = payload
			}
			b.SetBytes(int64(len(payload) * tc.batch))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.AppendBatch(batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecover measures cold-start recovery of a durable sharded
// store — checkpoint load plus WAL replay with re-embedding — for a
// corpus living entirely in the WAL versus entirely in checkpoints.
func BenchmarkRecover(b *testing.B) {
	docs, _, _ := serveCorpus(b)
	// build seeds a data dir once per sub-benchmark; CloseNoCheckpoint
	// leaves the WAL (or the checkpoint Save produced) untouched, so
	// every iteration recovers from identical on-disk state.
	build := func(b *testing.B, checkpoint bool) string {
		dir := b.TempDir()
		s, err := serve.OpenShardedDefault(dir, 4, 256, 16, serve.PersistConfig{CheckpointEvery: -1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.AddBulk(docs); err != nil {
			b.Fatal(err)
		}
		if checkpoint {
			if err := s.Save(); err != nil {
				b.Fatal(err)
			}
		}
		s.CloseNoCheckpoint()
		return dir
	}
	for _, tc := range []struct {
		name       string
		checkpoint bool
	}{
		{"wal_replay", false},
		{"from_checkpoint", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			dir := build(b, tc.checkpoint)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := serve.OpenShardedDefault(dir, 0, 256, 16, serve.PersistConfig{CheckpointEvery: -1})
				if err != nil {
					b.Fatal(err)
				}
				if s.Len() != len(docs) {
					b.Fatalf("recovered %d docs, want %d", s.Len(), len(docs))
				}
				b.StopTimer()
				s.CloseNoCheckpoint()
				b.StartTimer()
			}
		})
	}
}

// --- streaming ingest vs bulk ingest ---

// BenchmarkStreamIngest compares the NDJSON streaming path (bounded
// pipeline, credit-gate backpressure, adaptive index batches) against
// the one-shot /ingest/bulk path on the same corpus. The acceptance
// bar is streamed throughput ≥ the bulk path — streaming buys
// incremental progress and bounded memory, and must not give back
// throughput for it.
func BenchmarkStreamIngest(b *testing.B) {
	const docsPerOp = 512
	docs := make([]string, docsPerOp)
	for i := range docs {
		docs[i] = fmt.Sprintf(
			"Streamed policy document %d. Section %d covers topic %d in detail. Employees in group %d must follow rule %d at all times.",
			i, i*3, i%17, i%5, i*11)
	}
	var payload strings.Builder
	for _, d := range docs {
		fmt.Fprintf(&payload, "{\"text\":%q}\n", d)
	}
	ndjson := payload.String()
	// The bulk path's wire form — both sub-benchmarks start from bytes
	// on the wire and pay their own decode, as the HTTP handlers do.
	bulkPayload, err := json.Marshal(map[string][]string{"texts": docs})
	if err != nil {
		b.Fatal(err)
	}

	newServer := func(b *testing.B) *serve.Server {
		_, _, triples := serveCorpus(b)
		srv, err := serve.New(serve.Config{
			Shards: 8, Dim: 256, Detector: calibratedProposed(b, triples),
		})
		if err != nil {
			b.Fatal(err)
		}
		return srv
	}
	ctx := context.Background()

	b.Run("bulk", func(b *testing.B) {
		srv := newServer(b)
		defer srv.Close()
		b.SetBytes(int64(len(bulkPayload)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var req struct {
				Texts []string `json:"texts"`
			}
			if err := json.Unmarshal(bulkPayload, &req); err != nil {
				b.Fatal(err)
			}
			if _, err := srv.IngestBulk(ctx, req.Texts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stream", func(b *testing.B) {
		srv := newServer(b)
		defer srv.Close()
		b.SetBytes(int64(len(ndjson)))
		b.ResetTimer()
		var st serve.StreamStats
		for i := 0; i < b.N; i++ {
			if _, err := srv.IngestStream(ctx, strings.NewReader(ndjson), nil); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		st = srv.Stats().IngestStream
		b.ReportMetric(float64(st.Batch.Limit), "batch_limit")
		b.ReportMetric(float64(st.ThrottleEvents)/float64(b.N), "throttles/op")
	})
}

// --- adaptive vs static micro-batching under bursty load ---

// BenchmarkAdaptiveBatchingBursty drives the verification batcher
// with a bursty arrival pattern — short salvos of concurrent requests
// separated by idle gaps, the regime where a static (MaxBatch,
// MaxWait) pair must pick one loss: a long wait taxes the lone
// requests, a short one shreds the bursts into tiny batches. The
// AIMD controller must hold mean latency no worse than the best
// static setting.
func BenchmarkAdaptiveBatchingBursty(b *testing.B) {
	_, _, triples := serveCorpus(b)
	det := calibratedProposed(b, triples)
	ctx := context.Background()

	run := func(b *testing.B, cfg serve.BatcherConfig) {
		batcher := serve.NewBatcher(det, cfg)
		defer batcher.Close()
		var latNanos, ops atomic.Int64
		var n atomic.Uint64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				// Burst boundary: pause so the batcher sees a gap, then a
				// salvo of back-to-back requests from this worker.
				if i%8 == 0 {
					time.Sleep(2 * time.Millisecond)
				}
				i++
				t := triples[n.Add(1)%uint64(len(triples))]
				start := time.Now()
				if _, err := batcher.Verify(ctx, t); err != nil {
					b.Error(err)
					return
				}
				latNanos.Add(time.Since(start).Nanoseconds())
				ops.Add(1)
			}
		})
		b.StopTimer()
		if ops.Load() > 0 {
			b.ReportMetric(float64(latNanos.Load())/float64(ops.Load())/1e6, "ms/req")
		}
	}

	b.Run("adaptive", func(b *testing.B) {
		run(b, serve.BatcherConfig{MaxBatch: 16, MaxWait: 2 * time.Millisecond})
	})
	b.Run("static-16-2ms", func(b *testing.B) {
		run(b, serve.BatcherConfig{MaxBatch: 16, MaxWait: 2 * time.Millisecond, Static: true})
	})
	b.Run("static-16-500us", func(b *testing.B) {
		run(b, serve.BatcherConfig{MaxBatch: 16, MaxWait: 500 * time.Microsecond, Static: true})
	})
	b.Run("static-1", func(b *testing.B) {
		run(b, serve.BatcherConfig{MaxBatch: 1, Static: true})
	})
}
